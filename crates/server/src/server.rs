//! The thread-pool TCP daemon.
//!
//! Admission control is a bounded `sync_channel`: connection threads
//! parse each request line and `try_send` it to the worker pool. A full
//! queue sheds the request immediately with an `overloaded` error —
//! bounded queueing, never unbounded buffering. Workers check each job's
//! deadline *at dequeue time*: a request that waited out its
//! `deadline_ms` in the queue is answered `deadline_exceeded` instead of
//! executed. Responses travel back on a per-request channel, so each
//! connection sees its responses in request order.

use crate::metrics::Metrics;
use crate::protocol::{err_response, ok_response, parse_request, Request};
use crate::service::Registry;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded admission-queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Deadline applied when a request carries no `deadline_ms`.
    pub default_deadline: Duration,
    /// Honor the debug `sleep_ms` request field (load tests only).
    pub allow_debug_sleep: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(30),
            allow_debug_sleep: false,
        }
    }
}

/// One admitted request travelling to the worker pool.
struct Job {
    req: Request,
    enqueued: Instant,
    deadline: Duration,
    reply: std::sync::mpsc::Sender<String>,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`stop`](Self::stop).
pub struct ServerHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Metrics>,
}

impl ServerHandle {
    /// The server's metrics (shared with the `stats` method).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Signals shutdown and joins the acceptor and worker threads.
    /// Connection threads drain on their own once their clients hang up
    /// or their next read times out.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// True once a `shutdown` request or [`stop`](Self::stop) was seen.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Blocks until the server stops (via a `shutdown` request), then
    /// joins its threads.
    pub fn wait(mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Binds `addr` and serves `registry` until stopped. Returns immediately
/// with a [`ServerHandle`]; all work happens on background threads.
pub fn serve(
    registry: Registry,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let registry = Arc::new(registry);
    let metrics = Arc::new(Metrics::new());
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(config.queue_capacity);
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::spawn(move || worker_loop(&rx, &registry, &metrics, &stop, &config))
        })
        .collect();

    let acceptor = {
        let stop = Arc::clone(&stop);
        let metrics = Arc::clone(&metrics);
        let config = config.clone();
        std::thread::spawn(move || {
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let tx = tx.clone();
                        let stop = Arc::clone(&stop);
                        let metrics = Arc::clone(&metrics);
                        let config = config.clone();
                        std::thread::spawn(move || {
                            connection_loop(stream, &tx, &stop, &metrics, &config)
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
            }
            // tx drops here; workers see Disconnected and exit.
        })
    };

    Ok(ServerHandle {
        addr: local_addr,
        stop,
        acceptor: Some(acceptor),
        workers,
        metrics,
    })
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    registry: &Registry,
    metrics: &Metrics,
    stop: &AtomicBool,
    config: &ServerConfig,
) {
    loop {
        let job = {
            let guard = rx.lock().expect("worker queue lock");
            guard.recv_timeout(Duration::from_millis(50))
        };
        match job {
            Ok(job) => {
                let waited = job.enqueued.elapsed();
                let response = if waited > job.deadline {
                    metrics.record_deadline_expired(&job.req.method);
                    err_response(
                        &job.req.id,
                        "deadline_exceeded",
                        &format!(
                            "request waited {}ms in queue, past its {}ms deadline",
                            waited.as_millis(),
                            job.deadline.as_millis()
                        ),
                    )
                } else {
                    execute(&job.req, registry, metrics, stop, config)
                };
                // A dead client is fine; drop the response.
                let _ = job.reply.send(response);
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Executes one admitted request and renders its response line.
fn execute(
    req: &Request,
    registry: &Registry,
    metrics: &Metrics,
    stop: &AtomicBool,
    config: &ServerConfig,
) -> String {
    let t0 = Instant::now();
    if config.allow_debug_sleep && req.sleep_ms > 0 {
        std::thread::sleep(Duration::from_millis(req.sleep_ms));
    }
    let result = match req.method.as_str() {
        "stats" => Ok(metrics.to_value(config.workers, config.queue_capacity)),
        "shutdown" => {
            stop.store(true, Ordering::SeqCst);
            Ok(Value::Object(vec![("stopping".into(), Value::Bool(true))]))
        }
        _ => registry.dispatch(req),
    };
    let latency = t0.elapsed();
    match result {
        Ok(body) => {
            metrics.record(&req.method, true, latency);
            ok_response(&req.id, body)
        }
        Err((kind, message)) => {
            metrics.record(&req.method, false, latency);
            err_response(&req.id, &kind, &message)
        }
    }
}

fn connection_loop(
    stream: TcpStream,
    tx: &SyncSender<Job>,
    stop: &AtomicBool,
    metrics: &Metrics,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let response = admit(trimmed, tx, metrics, config);
                    if writer
                        .write_all(format!("{response}\n").as_bytes())
                        .is_err()
                    {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Partial line (if any) stays buffered in `line`.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Parses one request line and pushes it through admission control,
/// returning the response line.
fn admit(line: &str, tx: &SyncSender<Job>, metrics: &Metrics, config: &ServerConfig) -> String {
    let req = match parse_request(line) {
        Ok(r) => r,
        Err((kind, message)) => {
            metrics.record("<invalid>", false, Duration::ZERO);
            return err_response(&Value::Null, &kind, &message);
        }
    };
    let deadline = req
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(config.default_deadline);
    let (reply_tx, reply_rx) = std::sync::mpsc::channel();
    let method = req.method.clone();
    let id = req.id.clone();
    let job = Job {
        req,
        enqueued: Instant::now(),
        deadline,
        reply: reply_tx,
    };
    match tx.try_send(job) {
        Ok(()) => match reply_rx.recv() {
            Ok(response) => response,
            Err(_) => err_response(&id, "internal", "worker dropped the request"),
        },
        Err(TrySendError::Full(_)) => {
            metrics.record_shed(&method);
            err_response(
                &id,
                "overloaded",
                &format!(
                    "admission queue full ({} slots); retry later",
                    config.queue_capacity
                ),
            )
        }
        Err(TrySendError::Disconnected(_)) => {
            err_response(&id, "internal", "server is shutting down")
        }
    }
}
