//! The thread-pool TCP daemon.
//!
//! Admission control is a bounded `sync_channel`: connection threads
//! parse each request line and `try_send` it to the worker pool. A full
//! queue sheds the request immediately with an `overloaded` error —
//! bounded queueing, never unbounded buffering. Workers check each job's
//! deadline *at dequeue time*: a request that waited out its
//! `deadline_ms` in the queue is answered `deadline_exceeded` instead of
//! executed. Responses travel back on a per-request channel, so each
//! connection sees its responses in request order.

use crate::metrics::Metrics;
use crate::protocol::{err_response, obj, ok_response, parse_request, Request};
use crate::service::Registry;
use rqp_faults::{FaultPlan, FaultSite};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded admission-queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Deadline applied when a request carries no `deadline_ms`.
    pub default_deadline: Duration,
    /// Honor the debug `sleep_ms` request field (load tests only).
    pub allow_debug_sleep: bool,
    /// Hard cap on one request line; a longer line is answered
    /// `bad_request` and the connection closed, so an unbounded client
    /// cannot grow a worker's buffer without limit.
    pub max_line_bytes: usize,
    /// How long a connection may sit mid-line (bytes received, no
    /// terminating newline) before it is answered `timeout` and closed —
    /// a stalled client cannot pin its connection thread forever. Idle
    /// connections *between* requests are unaffected.
    pub read_timeout: Duration,
    /// Connection-level fault plan (`server.read` / `server.write`
    /// drops); `None` serves faithfully.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(30),
            allow_debug_sleep: false,
            max_line_bytes: 1 << 20,
            read_timeout: Duration::from_secs(30),
            faults: None,
        }
    }
}

/// One admitted request travelling to the worker pool.
struct Job {
    req: Request,
    enqueued: Instant,
    deadline: Duration,
    reply: std::sync::mpsc::Sender<String>,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`stop`](Self::stop).
pub struct ServerHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Metrics>,
}

impl ServerHandle {
    /// The server's metrics (shared with the `stats` method).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Signals shutdown and joins the acceptor and worker threads.
    /// Connection threads drain on their own once their clients hang up
    /// or their next read times out.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// True once a `shutdown` request or [`stop`](Self::stop) was seen.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Blocks until the server stops (via a `shutdown` request), then
    /// joins its threads.
    pub fn wait(mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Binds `addr` and serves `registry` until stopped. Returns immediately
/// with a [`ServerHandle`]; all work happens on background threads.
pub fn serve(
    registry: Registry,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let registry = Arc::new(registry);
    let metrics = Arc::new(Metrics::new());
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(config.queue_capacity);
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::spawn(move || worker_loop(&rx, &registry, &metrics, &stop, &config))
        })
        .collect();

    let acceptor = {
        let stop = Arc::clone(&stop);
        let metrics = Arc::clone(&metrics);
        let config = config.clone();
        std::thread::spawn(move || {
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let tx = tx.clone();
                        let stop = Arc::clone(&stop);
                        let metrics = Arc::clone(&metrics);
                        let config = config.clone();
                        std::thread::spawn(move || {
                            connection_loop(stream, &tx, &stop, &metrics, &config)
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
            }
            // tx drops here; workers see Disconnected and exit.
        })
    };

    Ok(ServerHandle {
        addr: local_addr,
        stop,
        acceptor: Some(acceptor),
        workers,
        metrics,
    })
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    registry: &Registry,
    metrics: &Metrics,
    stop: &AtomicBool,
    config: &ServerConfig,
) {
    loop {
        let job = {
            let guard = rx.lock().expect("worker queue lock");
            guard.recv_timeout(Duration::from_millis(50))
        };
        match job {
            Ok(job) => {
                let waited = job.enqueued.elapsed();
                let response = if waited > job.deadline {
                    metrics.record_deadline_expired(&job.req.method);
                    err_response(
                        &job.req.id,
                        "deadline_exceeded",
                        &format!(
                            "request waited {}ms in queue, past its {}ms deadline",
                            waited.as_millis(),
                            job.deadline.as_millis()
                        ),
                    )
                } else {
                    execute(&job.req, registry, metrics, stop, config)
                };
                // A dead client is fine; drop the response.
                let _ = job.reply.send(response);
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Executes one admitted request and renders its response line.
fn execute(
    req: &Request,
    registry: &Registry,
    metrics: &Metrics,
    stop: &AtomicBool,
    config: &ServerConfig,
) -> String {
    let t0 = Instant::now();
    if config.allow_debug_sleep && req.sleep_ms > 0 {
        std::thread::sleep(Duration::from_millis(req.sleep_ms));
    }
    let result = match req.method.as_str() {
        "stats" => Ok(metrics.to_value(config.workers, config.queue_capacity)),
        "health" => Ok(obj(vec![
            ("queries", registry.health()),
            ("faults", metrics.faults_value()),
        ])),
        "shutdown" => {
            stop.store(true, Ordering::SeqCst);
            Ok(Value::Object(vec![("stopping".into(), Value::Bool(true))]))
        }
        _ => {
            let (result, stats) = registry.dispatch(req);
            metrics.record_call(&stats);
            result
        }
    };
    let latency = t0.elapsed();
    match result {
        Ok(body) => {
            metrics.record(&req.method, true, latency);
            ok_response(&req.id, body)
        }
        Err((kind, message)) => {
            metrics.record(&req.method, false, latency);
            err_response(&req.id, &kind, &message)
        }
    }
}

fn connection_loop(
    stream: TcpStream,
    tx: &SyncSender<Job>,
    stop: &AtomicBool,
    metrics: &Metrics,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    // Set while `line` holds a partial request (bytes but no newline
    // yet); a client stalled mid-line past `read_timeout` is cut off.
    let mut partial_since: Option<Instant> = None;
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return, // client hung up
            Ok(buf) => buf,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let Some(since) = partial_since {
                    if since.elapsed() >= config.read_timeout {
                        let response = err_response(
                            &Value::Null,
                            "timeout",
                            &format!(
                                "request stalled mid-line for over {}ms",
                                config.read_timeout.as_millis()
                            ),
                        );
                        let _ = writer.write_all(format!("{response}\n").as_bytes());
                        return;
                    }
                }
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        if let Some(plan) = &config.faults {
            if plan.should_inject(FaultSite::ServerRead) {
                metrics.record_injected();
                return; // injected connection drop mid-read
            }
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                line.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                partial_since = None;
                if line.len() > config.max_line_bytes {
                    let response = err_response(
                        &Value::Null,
                        "bad_request",
                        &format!(
                            "request line of {} bytes exceeds the {}-byte cap",
                            line.len(),
                            config.max_line_bytes
                        ),
                    );
                    let _ = writer.write_all(format!("{response}\n").as_bytes());
                    return;
                }
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    let response = admit(trimmed, tx, metrics, config);
                    if let Some(plan) = &config.faults {
                        if plan.should_inject(FaultSite::ServerWrite) {
                            metrics.record_injected();
                            return; // injected connection drop pre-write
                        }
                    }
                    if writer
                        .write_all(format!("{response}\n").as_bytes())
                        .is_err()
                    {
                        return;
                    }
                }
                line.clear();
            }
            None => {
                let n = chunk.len();
                line.extend_from_slice(chunk);
                reader.consume(n);
                partial_since.get_or_insert_with(Instant::now);
                if line.len() > config.max_line_bytes {
                    let response = err_response(
                        &Value::Null,
                        "bad_request",
                        &format!(
                            "unterminated request exceeds the {}-byte cap",
                            config.max_line_bytes
                        ),
                    );
                    let _ = writer.write_all(format!("{response}\n").as_bytes());
                    return;
                }
            }
        }
    }
}

/// Parses one request line and pushes it through admission control,
/// returning the response line.
fn admit(line: &str, tx: &SyncSender<Job>, metrics: &Metrics, config: &ServerConfig) -> String {
    let req = match parse_request(line) {
        Ok(r) => r,
        Err((kind, message)) => {
            metrics.record("<invalid>", false, Duration::ZERO);
            return err_response(&Value::Null, &kind, &message);
        }
    };
    let deadline = req
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(config.default_deadline);
    let (reply_tx, reply_rx) = std::sync::mpsc::channel();
    let method = req.method.clone();
    let id = req.id.clone();
    let job = Job {
        req,
        enqueued: Instant::now(),
        deadline,
        reply: reply_tx,
    };
    match tx.try_send(job) {
        Ok(()) => match reply_rx.recv() {
            Ok(response) => response,
            Err(_) => err_response(&id, "internal", "worker dropped the request"),
        },
        Err(TrySendError::Full(_)) => {
            metrics.record_shed(&method);
            err_response(
                &id,
                "overloaded",
                &format!(
                    "admission queue full ({} slots); retry later",
                    config.queue_capacity
                ),
            )
        }
        Err(TrySendError::Disconnected(_)) => {
            err_response(&id, "internal", "server is shutting down")
        }
    }
}
