//! Artifact-backed query service: one [`ServedQuery`] per compiled
//! template, dispatching `explain` / `run_*` requests.
//!
//! A served query is constructed from a [`CompiledArtifact`] without
//! re-running any offline work: the surface, contour schedule, reduced
//! bouquet and recost matrix all come straight off disk, and only the
//! cheap pieces (optimizer instantiation, contour re-derivation, the
//! native choice) are rebuilt. A served query *owns* its artifact state
//! (boxed, with internally self-referential borrows — see the safety
//! notes on [`ServedQuery::from_artifact`]), so dropping one — e.g. on
//! LRU eviction from the [`crate::cache::ArtifactCache`] — actually
//! frees its surface and recost matrix, unlike the previous `Box::leak`
//! grounding which pinned every loaded artifact for the process
//! lifetime.
//!
//! The immutable `explain` response body is rendered to JSON once at
//! construction and served as a shared pre-serialized string
//! ([`Body::Raw`]) — the fast path the bench-serve throughput target
//! rides on. [`crate::protocol::ok_response_raw`] keeps the framing
//! byte-identical to the per-request serialization it replaces.

use crate::cache::ArtifactCache;
use crate::protocol::{num, num_arr, obj, string, Request};
use rqp_artifacts::CompiledArtifact;
use rqp_catalog::Catalog;
use rqp_common::{GridIdx, RqpError};
use rqp_core::{
    penalty, AlignedBound, CachedOracle, EvalContext, ExecutionOracle, FaultyOracle, NativeChoice,
    PenaltyConfig, PenaltySelection, PlanBouquet, PriorConfig, RunReport, SelectivityPrior,
    SpillBound, SpillMemo,
};
use rqp_ess::{EssSurface, SurfaceAccess};
use rqp_faults::{Attempt, BreakerConfig, CircuitBreaker, FaultPlan, RetryPolicy};
use rqp_optimizer::{CostParams, EnumerationMode, Optimizer, QuerySpec};
use serde::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-call fault accounting, merged into the server-wide counters by
/// the dispatch layer.
#[derive(Debug, Default, Clone)]
pub struct CallStats {
    /// Oracle faults injected while serving this call.
    pub faults_injected: u64,
    /// Retries that absorbed those faults.
    pub retries: u64,
    /// The response is a native-baseline fallback (`degraded: true`).
    pub degraded: bool,
    /// This call's failure tripped the breaker open.
    pub breaker_opened: bool,
    /// Budget burnt by fault-aborted oracle attempts (operational waste,
    /// never counted as sub-optimality).
    pub wasted_cost: f64,
}

/// A response body: either a per-request JSON [`Value`] or a shared
/// pre-serialized string (the cached `explain` fast path). The raw form
/// is byte-identical to serializing the equivalent `Value` — asserted
/// at construction and relied on by the determinism tests.
#[derive(Clone)]
pub enum Body {
    /// Built per request; the server serializes it into the response.
    Value(Value),
    /// Pre-serialized JSON, shared across requests without re-rendering.
    Raw(Arc<str>),
}

impl Body {
    /// The serialized result body (allocates for the `Value` form; the
    /// raw form is already rendered). Test/diagnostic helper — the
    /// server splices bodies into response lines without going through
    /// this.
    pub fn render(&self) -> String {
        match self {
            Body::Value(v) => serde_json::to_string(v).expect("body serializes"),
            Body::Raw(s) => s.to_string(),
        }
    }
}

/// One query template, warm-started from its artifact and ready to serve
/// concurrent requests (all request-handling state is per-call).
///
/// Field order is load-bearing: Rust drops fields in declaration order,
/// and `ctx`/`bouquet` borrow from the boxed `opt`/`surface`/`query`
/// owners declared after them, so the borrowers are destroyed before
/// their referents.
pub struct ServedQuery {
    name: String,
    ratio: f64,
    ctx: EvalContext<'static>,
    bouquet: PlanBouquet<'static>,
    native: NativeChoice,
    /// Offline penalty-aware selection, recomputed at load time from the
    /// artifact's matrix (and verified against the persisted summary).
    penalty: PenaltySelection,
    /// `explain` response body, rendered once at construction.
    explain_raw: Arc<str>,
    /// Resident-footprint estimate, for the LRU cache's byte accounting.
    approx_bytes: usize,
    faults: Option<Arc<FaultPlan>>,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
    // Owners of the state `ctx`/`bouquet` borrow. The boxes give the
    // referents stable heap addresses across moves of `ServedQuery`.
    opt: Box<Optimizer<'static>>,
    surface: Box<EssSurface>,
    #[allow(dead_code)] // owned solely so `opt`'s borrow stays valid
    query: Box<QuerySpec>,
}

impl ServedQuery {
    /// Builds self-owned service state from the artifact. Fails (with a
    /// human-readable message) if the artifact's query does not validate
    /// against `catalog` or its components disagree with each other.
    ///
    /// # Safety notes
    ///
    /// The `'static` lifetimes on `ctx`/`bouquet` are a lie told to the
    /// borrow checker: they actually borrow the `Box<QuerySpec>` /
    /// `Box<EssSurface>` / `Box<Optimizer>` fields of the same struct.
    /// This is sound because (a) the boxes heap-allocate, so the
    /// referents never move even when the `ServedQuery` itself does,
    /// (b) the borrowing fields are declared before the owning boxes,
    /// so drop order destroys every borrower before its referent, and
    /// (c) all fields are private and no method lets a `'static`
    /// reference escape — callers only see owned or `&self`-scoped
    /// data. Unlike the previous `Box::leak` grounding, dropping a
    /// `ServedQuery` genuinely frees its artifact state, which is what
    /// lets the LRU cache bound resident memory.
    pub fn from_artifact(
        artifact: CompiledArtifact,
        catalog: &'static Catalog,
    ) -> Result<Self, String> {
        let approx_bytes = artifact.approx_bytes();
        let CompiledArtifact {
            query,
            ratio,
            lambda,
            surface,
            contours: _,
            bouquet,
            rho_red,
            matrix,
            penalty: penalty_summary,
        } = artifact;
        let name = query.name.clone();
        let query = Box::new(query);
        let surface = Box::new(surface);
        // SAFETY: see the struct-level notes — stable heap addresses,
        // drop order, and no escaping references.
        let query_ref: &'static QuerySpec = unsafe { &*(query.as_ref() as *const QuerySpec) };
        let surface_ref: &'static EssSurface = unsafe { &*(surface.as_ref() as *const EssSurface) };
        let opt = Box::new(
            Optimizer::new(
                catalog,
                query_ref,
                CostParams::default(),
                EnumerationMode::LeftDeep,
            )
            .map_err(|e| format!("artifact query `{name}` rejected by catalog: {e}"))?,
        );
        // SAFETY: as above.
        let opt_ref: &'static Optimizer<'static> =
            unsafe { &*(opt.as_ref() as *const Optimizer<'static>) };
        let ctx = EvalContext::from_parts(surface_ref, opt_ref, matrix)
            .map_err(|e| format!("artifact `{name}`: {e}"))?;
        let bouquet =
            PlanBouquet::from_parts(surface_ref, opt_ref, ratio, lambda, bouquet, rho_red)
                .map_err(|e| format!("artifact `{name}`: {e}"))?;
        let native = NativeChoice::compute(surface_ref, opt_ref);
        // Rebuild the penalty-aware selection from the prior the artifact
        // records (defaults when the artifact predates the field): cheap
        // — a pure scan of the already-loaded matrix — and verifiable
        // against the persisted summary.
        let prior_config = match &penalty_summary {
            Some(s) => PriorConfig {
                seed: s.prior_seed,
                sigma: s.prior_sigma,
                jitter: s.prior_jitter,
            },
            None => PriorConfig::default(),
        };
        let alpha = penalty_summary
            .as_ref()
            .map(|s| s.alpha)
            .unwrap_or(PenaltyConfig::default().alpha);
        let prior = SelectivityPrior::lognormal(surface_ref.grid(), &native.qe_sels, prior_config)
            .map_err(|e| format!("artifact `{name}`: penalty prior: {e}"))?;
        let penalty_cfg = PenaltyConfig {
            alpha,
            ..PenaltyConfig::default()
        };
        let penalty = penalty::select_ctx(&ctx, &prior, &penalty_cfg)
            .map_err(|e| format!("artifact `{name}`: penalty selection: {e}"))?;
        if let Some(s) = &penalty_summary {
            let fp = format!("{:016x}", penalty.chosen.fingerprint);
            let hash = format!("{:016x}", penalty.prior_hash);
            if s.chosen_fingerprint != fp || s.prior_hash != hash {
                return Err(format!(
                    "artifact `{name}`: persisted penalty selection (plan {}, prior {}) \
                     disagrees with the recomputed one (plan {fp}, prior {hash})",
                    s.chosen_fingerprint, s.prior_hash
                ));
            }
        }
        let explain_value = explain_value(
            &name,
            ratio,
            lambda,
            surface_ref,
            &bouquet,
            &native,
            &penalty,
        );
        let explain_raw: Arc<str> =
            Arc::from(serde_json::to_string(&explain_value).expect("explain serializes"));
        Ok(Self {
            name,
            ratio,
            ctx,
            bouquet,
            native,
            penalty,
            explain_raw,
            approx_bytes,
            faults: None,
            retry: RetryPolicy::no_sleep(6),
            breaker: CircuitBreaker::new(BreakerConfig::default()),
            opt,
            surface,
            query,
        })
    }

    /// Injects oracle faults from `plan` into every discovery run this
    /// query serves, absorbing transients under `retry`.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>, retry: RetryPolicy) -> Self {
        self.faults = Some(plan);
        self.retry = retry;
        self
    }

    /// Replaces the circuit-breaker configuration (threshold/cooldown).
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> Self {
        self.breaker = CircuitBreaker::new(cfg);
        self
    }

    /// The query template name requests address this query by.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resident-footprint estimate used for LRU cache byte accounting.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// The cached, pre-serialized `explain` response body.
    pub fn explain_body(&self) -> Body {
        Body::Raw(self.explain_raw.clone())
    }

    /// Per-query health snapshot: breaker state and failure counters.
    pub fn health(&self) -> Value {
        let snap = self.breaker.snapshot();
        obj(vec![
            ("breaker", string(snap.state.name())),
            ("consecutive_failures", num(snap.consecutive as f64)),
            ("open_events", num(snap.open_events as f64)),
        ])
    }

    /// Snaps requested selectivities onto the grid; errors if the arity
    /// is wrong.
    fn snap(&self, qa: &[f64]) -> Result<(GridIdx, Vec<usize>), String> {
        let grid = self.surface.grid();
        if qa.len() != grid.ndims() {
            return Err(format!(
                "query `{}` has {} error-prone predicates, got {} selectivities",
                self.name,
                grid.ndims(),
                qa.len()
            ));
        }
        let coords: Vec<usize> = qa
            .iter()
            .enumerate()
            .map(|(j, &s)| grid.dim(j).nearest_idx(s))
            .collect();
        Ok((grid.flat(&coords), coords))
    }

    fn run_common(&self, algorithm: &str, qa_idx: GridIdx, coords: &[usize]) -> Vec<(&str, Value)> {
        let grid = self.surface.grid();
        vec![
            ("algorithm", string(algorithm)),
            ("query", string(&self.name)),
            ("qa_grid", num_arr(grid.sels(qa_idx))),
            ("qa_coords", num_arr(coords.iter().map(|&c| c as f64))),
            ("opt_cost", num(self.surface.opt_cost(qa_idx))),
        ]
    }

    fn report_fields(
        &self,
        report: &RunReport,
        qa_idx: GridIdx,
        guarantee: f64,
    ) -> Vec<(String, Value)> {
        let learnt = Value::Array(
            report
                .learnt
                .iter()
                .map(|l| match l {
                    Some(s) => Value::Num(*s),
                    None => Value::Null,
                })
                .collect(),
        );
        vec![
            ("total_cost".into(), num(report.total_cost)),
            (
                "sub_optimality".into(),
                num(report.sub_optimality(self.surface.opt_cost(qa_idx))),
            ),
            ("mso_guarantee".into(), num(guarantee)),
            ("executions".into(), num(report.executions() as f64)),
            ("completed".into(), Value::Bool(report.completed)),
            (
                "last_contour".into(),
                match report.last_contour() {
                    Some(i) => num(i as f64),
                    None => Value::Null,
                },
            ),
            ("learnt".into(), learnt),
        ]
    }

    /// The native-baseline response body. With a `degraded_reason`, the
    /// body is explicitly labelled as a fallback (`degraded: true`,
    /// plus the algorithm the client actually asked for).
    fn native_response(
        &self,
        requested: &str,
        qa_idx: GridIdx,
        coords: &[usize],
        degraded_reason: Option<&str>,
    ) -> Value {
        let mut fields = self.run_common("native", qa_idx, coords);
        let sub = self.native.sub_optimality(&self.surface, &self.opt, qa_idx);
        let opt_cost = self.surface.opt_cost(qa_idx);
        fields.push(("est_sels", num_arr(self.native.qe_sels.iter().copied())));
        fields.push(("est_cost", num(self.native.est_cost)));
        fields.push(("total_cost", num(sub * opt_cost)));
        fields.push(("sub_optimality", num(sub)));
        fields.push(("completed", Value::Bool(true)));
        match degraded_reason {
            Some(reason) => {
                fields.push(("degraded", Value::Bool(true)));
                fields.push(("degraded_reason", string(reason)));
                fields.push(("requested_algorithm", string(requested)));
            }
            None => fields.push(("degraded", Value::Bool(false))),
        }
        obj(fields)
    }

    /// The penalty-aware response: the offline-chosen plan is charged
    /// its full recost at `qa`, like the native baseline, plus the risk
    /// numbers and prior identity that justified the choice.
    fn penaltyaware_response(&self, qa_idx: GridIdx, coords: &[usize]) -> Value {
        let mut fields = self.run_common("penaltyaware", qa_idx, coords);
        let opt_cost = self.surface.opt_cost(qa_idx);
        let cost = match self.penalty.chosen.plan_id {
            Some(pid) => self.ctx.matrix().cost(pid, qa_idx),
            None => {
                let sels = self.opt.sels_at(&self.surface.grid().sels(qa_idx));
                self.opt.cost_plan(&self.penalty.chosen_plan, &sels)
            }
        };
        fields.push((
            "chosen_plan",
            match self.penalty.chosen.plan_id {
                Some(pid) => num(pid as f64),
                None => Value::Null,
            },
        ));
        fields.push((
            "chosen_fingerprint",
            string(format!("{:016x}", self.penalty.chosen.fingerprint)),
        ));
        fields.push((
            "prior_hash",
            string(format!("{:016x}", self.penalty.prior_hash)),
        ));
        fields.push(("alpha", num(self.penalty.alpha)));
        fields.push(("expected_penalty", num(self.penalty.chosen.expected)));
        fields.push(("cvar", num(self.penalty.chosen.cvar)));
        fields.push(("native_expected", num(self.penalty.native.expected)));
        fields.push(("total_cost", num(cost)));
        fields.push(("sub_optimality", num(cost / opt_cost)));
        fields.push(("completed", Value::Bool(true)));
        fields.push(("degraded", Value::Bool(false)));
        obj(fields)
    }

    /// The penalty-aware selection this query serves (tests and stats).
    pub fn penalty_selection(&self) -> &PenaltySelection {
        &self.penalty
    }

    /// Runs the discovery algorithm behind `method` against a fresh
    /// per-call oracle, wrapped in the fault plan when one is attached.
    fn run_discovery(
        &self,
        method: &str,
        qa_idx: GridIdx,
        stats: &mut CallStats,
    ) -> rqp_common::Result<(RunReport, f64, &'static str)> {
        let mut memo = SpillMemo::new();
        let mut cached = CachedOracle::at_grid(&self.ctx, qa_idx, &mut memo);
        let go = |oracle: &mut dyn ExecutionOracle| match method {
            "run_spillbound" => {
                let mut sb = SpillBound::new(&*self.surface, &self.opt, self.ratio);
                let report = sb.run(oracle)?;
                Ok((report, sb.mso_guarantee(), "spillbound"))
            }
            "run_alignedbound" => {
                let mut ab = AlignedBound::new(&*self.surface, &self.opt, self.ratio);
                let report = ab.run(oracle)?;
                Ok((report, ab.mso_guarantee(), "alignedbound"))
            }
            "run_planbouquet" => {
                let report = self.bouquet.run(oracle)?;
                Ok((report, self.bouquet.mso_guarantee(), "planbouquet"))
            }
            other => Err(RqpError::InvalidQuery(format!(
                "`{other}` is not a discovery method"
            ))),
        };
        match &self.faults {
            Some(plan) => {
                let mut faulty =
                    FaultyOracle::new(cached, plan.as_ref()).with_retry(self.retry.clone());
                let result = go(&mut faulty);
                let fs = faulty.stats();
                stats.faults_injected += fs.faults_injected;
                stats.retries += fs.retries;
                stats.wasted_cost += fs.wasted_cost;
                result
            }
            None => go(&mut cached),
        }
    }

    /// Runs `method` under the per-query circuit breaker: an open
    /// breaker (or a failure that opens it) is answered by the native
    /// baseline with `degraded: true` instead of an error — every
    /// request gets a well-formed response while the breaker recovers
    /// via its half-open probe.
    fn run_guarded(
        &self,
        method: &str,
        qa_idx: GridIdx,
        coords: &[usize],
        stats: &mut CallStats,
    ) -> Result<Value, (String, String)> {
        let requested = method.strip_prefix("run_").unwrap_or(method);
        if matches!(self.breaker.allow_attempt(), Attempt::Degrade) {
            stats.degraded = true;
            return Ok(self.native_response(
                requested,
                qa_idx,
                coords,
                Some("circuit breaker open; serving native fallback"),
            ));
        }
        match self.run_discovery(method, qa_idx, stats) {
            Ok((report, guarantee, algorithm)) => {
                self.breaker.record_success();
                let mut fields: Vec<(String, Value)> = self
                    .run_common(algorithm, qa_idx, coords)
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                fields.extend(self.report_fields(&report, qa_idx, guarantee));
                fields.push(("degraded".into(), Value::Bool(false)));
                Ok(Value::Object(fields))
            }
            Err(e @ RqpError::Fault(_)) => {
                stats.breaker_opened = self.breaker.record_failure();
                if self.breaker.is_open() {
                    stats.degraded = true;
                    Ok(self.native_response(
                        requested,
                        qa_idx,
                        coords,
                        Some("execution faults tripped the circuit breaker"),
                    ))
                } else {
                    Err((e.kind().into(), e.to_string()))
                }
            }
            Err(e) => Err((e.kind().into(), e.to_string())),
        }
    }

    /// Dispatches one `explain` / `run_*` method. Returns
    /// `Err((kind, message))` for protocol-level failures, plus the
    /// call's fault accounting. `explain` is answered from the cached
    /// pre-serialized body without touching the surface.
    pub fn handle(&self, method: &str, qa: &[f64]) -> (Result<Body, (String, String)>, CallStats) {
        let mut stats = CallStats::default();
        let bad = |m: String| ("bad_request".to_string(), m);
        let result = match method {
            "explain" => Ok(self.explain_body()),
            "run_native" => self.snap(qa).map_err(bad).map(|(qa_idx, coords)| {
                Body::Value(self.native_response("native", qa_idx, &coords, None))
            }),
            "run_penaltyaware" => self
                .snap(qa)
                .map_err(bad)
                .map(|(qa_idx, coords)| Body::Value(self.penaltyaware_response(qa_idx, &coords))),
            "run_spillbound" | "run_alignedbound" | "run_planbouquet" => {
                match self.snap(qa).map_err(bad) {
                    Ok((qa_idx, coords)) => self
                        .run_guarded(method, qa_idx, &coords, &mut stats)
                        .map(Body::Value),
                    Err(e) => Err(e),
                }
            }
            other => Err(("unknown_method".into(), format!("unknown method `{other}`"))),
        };
        (result, stats)
    }
}

/// The `explain` response body for one compiled template. A free
/// function over the already-validated parts so the constructor can
/// render and cache it before `ServedQuery` exists.
fn explain_value(
    name: &str,
    ratio: f64,
    lambda: f64,
    surface: &EssSurface,
    bouquet: &PlanBouquet<'_>,
    native: &NativeChoice,
    penalty: &PenaltySelection,
) -> Value {
    let grid = surface.grid();
    let d = grid.ndims();
    let contours = bouquet.contours();
    obj(vec![
        ("query", string(name)),
        ("ndims", num(d as f64)),
        ("grid_len", num(grid.len() as f64)),
        (
            "grid_points_per_dim",
            num_arr((0..d).map(|j| grid.dim(j).len() as f64)),
        ),
        ("posp_size", num(surface.posp_size() as f64)),
        // Surface accounting via the dense/lazy-unifying trait: a
        // dense artifact serves every cell, so `cells_materialized`
        // equals `grid_len`; a lazy warm start would report only the
        // contour cells its sparse artifact persisted.
        (
            "surface",
            obj(vec![
                ("kind", string("dense")),
                (
                    "cells_materialized",
                    num(SurfaceAccess::cells_materialized(surface) as f64),
                ),
                (
                    "optimizer_calls",
                    num(SurfaceAccess::optimizer_calls(surface) as f64),
                ),
            ]),
        ),
        ("cmin", num(surface.cmin())),
        ("cmax", num(surface.cmax())),
        ("ratio", num(ratio)),
        ("lambda", num(lambda)),
        ("contours", num(contours.len() as f64)),
        ("contour_costs", num_arr(contours.costs().iter().copied())),
        ("rho_red", num(bouquet.rho_red() as f64)),
        (
            "guarantees",
            obj(vec![
                ("spillbound", num(rqp_core::spillbound_guarantee(d))),
                (
                    "alignedbound_lower",
                    num(rqp_core::aligned_guarantee_lower(d)),
                ),
                ("planbouquet", num(bouquet.mso_guarantee())),
            ]),
        ),
        (
            "native",
            obj(vec![
                ("est_sels", num_arr(native.qe_sels.iter().copied())),
                ("est_cost", num(native.est_cost)),
            ]),
        ),
        (
            "penalty",
            obj(vec![
                ("prior_hash", string(format!("{:016x}", penalty.prior_hash))),
                ("alpha", num(penalty.alpha)),
                (
                    "chosen_plan",
                    match penalty.chosen.plan_id {
                        Some(pid) => num(pid as f64),
                        None => Value::Null,
                    },
                ),
                (
                    "chosen_fingerprint",
                    string(format!("{:016x}", penalty.chosen.fingerprint)),
                ),
                ("expected_penalty", num(penalty.chosen.expected)),
                ("cvar", num(penalty.chosen.cvar)),
                ("native_expected", num(penalty.native.expected)),
                ("candidates", num(penalty.risks.len() as f64)),
            ]),
        ),
    ])
}

/// The set of query templates a server instance exposes: queries
/// *pinned* at startup (loaded eagerly, never evicted) plus, when an
/// [`ArtifactCache`] is attached, every artifact in the backing store —
/// faulted in on first use and LRU-evicted under the cache's byte
/// bound. This is what lets one daemon serve the entire workload suite
/// without holding every dense matrix resident at once.
#[derive(Default)]
pub struct Registry {
    pinned: BTreeMap<String, Arc<ServedQuery>>,
    cache: Option<ArtifactCache>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pinned served query (replacing any previous one of the
    /// same name). Pinned queries stay resident for the process
    /// lifetime and shadow same-named artifacts in the cache's store.
    pub fn insert(&mut self, q: ServedQuery) {
        self.pinned.insert(q.name().to_string(), Arc::new(q));
    }

    /// Attaches the LRU artifact cache serving non-pinned queries.
    pub fn with_cache(mut self, cache: ArtifactCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached cache, if any (stats reporting).
    pub fn cache(&self) -> Option<&ArtifactCache> {
        self.cache.as_ref()
    }

    /// Served query names, sorted: pinned plus everything the cache's
    /// store can load on demand.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.pinned.keys().cloned().collect();
        if let Some(cache) = &self.cache {
            for name in cache.known_names() {
                if !self.pinned.contains_key(&name) {
                    names.push(name);
                }
            }
        }
        names.sort();
        names
    }

    /// Number of pinned queries (cache-served ones are unbounded-on-disk
    /// and not counted here).
    pub fn len(&self) -> usize {
        self.pinned.len()
    }

    /// True when no queries are pinned and no cache is attached.
    pub fn is_empty(&self) -> bool {
        self.pinned.is_empty() && self.cache.is_none()
    }

    /// True when `name` can be served without a cold artifact load —
    /// pinned, or currently resident in the cache. The shards use this
    /// to decide whether an `explain` is cheap enough to run inline.
    pub fn is_resident(&self, name: &str) -> bool {
        self.pinned.contains_key(name) || self.cache.as_ref().is_some_and(|c| c.is_resident(name))
    }

    /// Resolves a query by name: pinned first, then the cache.
    pub fn get(&self, name: &str) -> Result<Arc<ServedQuery>, (String, String)> {
        if let Some(q) = self.pinned.get(name) {
            return Ok(q.clone());
        }
        if let Some(cache) = &self.cache {
            return cache.get(name);
        }
        Err((
            "unknown_query".to_string(),
            format!(
                "query `{name}` is not served (available: {})",
                self.names().join(", ")
            ),
        ))
    }

    /// Per-query health snapshots, keyed by query name: every pinned
    /// query plus the cache's currently-resident ones.
    pub fn health(&self) -> Value {
        let mut entries: BTreeMap<String, Value> = self
            .pinned
            .iter()
            .map(|(name, q)| (name.clone(), q.health()))
            .collect();
        if let Some(cache) = &self.cache {
            for q in cache.resident() {
                entries
                    .entry(q.name().to_string())
                    .or_insert_with(|| q.health());
            }
        }
        Value::Object(entries.into_iter().collect())
    }

    /// Dispatches a query-addressed request to the right [`ServedQuery`],
    /// returning the response body and the call's fault accounting.
    pub fn dispatch(&self, req: &Request) -> (Result<Body, (String, String)>, CallStats) {
        match req.method.as_str() {
            "list_queries" => (
                Ok(Body::Value(Value::Array(
                    self.names().into_iter().map(Value::String).collect(),
                ))),
                CallStats::default(),
            ),
            _ => {
                let name = match req.query.as_deref() {
                    Some(n) => n,
                    None => {
                        return (
                            Err((
                                "bad_request".to_string(),
                                format!("method `{}` requires a `query` field", req.method),
                            )),
                            CallStats::default(),
                        )
                    }
                };
                match self.get(name) {
                    Ok(served) => served.handle(&req.method, &req.qa),
                    Err(e) => (Err(e), CallStats::default()),
                }
            }
        }
    }
}
