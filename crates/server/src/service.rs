//! Artifact-backed query service: one [`ServedQuery`] per compiled
//! template, dispatching `explain` / `run_*` requests.
//!
//! A served query is constructed from a [`CompiledArtifact`] without
//! re-running any offline work: the surface, contour schedule, reduced
//! bouquet and recost matrix all come straight off disk, and only the
//! cheap pieces (optimizer instantiation, contour re-derivation, the
//! native choice) are rebuilt. The daemon owns its state for the process
//! lifetime, so the borrowed `Optimizer<'a>`/`EssSurface` plumbing is
//! grounded with `Box::leak` — the same idiom the workspace's test
//! fixtures use for `'static` fixtures.

use crate::protocol::{num, num_arr, obj, string, Request};
use rqp_artifacts::CompiledArtifact;
use rqp_catalog::Catalog;
use rqp_common::{GridIdx, RqpError};
use rqp_core::{
    AlignedBound, CachedOracle, EvalContext, ExecutionOracle, FaultyOracle, NativeChoice,
    PlanBouquet, RunReport, SpillBound, SpillMemo,
};
use rqp_ess::{EssSurface, SurfaceAccess};
use rqp_faults::{Attempt, BreakerConfig, CircuitBreaker, FaultPlan, RetryPolicy};
use rqp_optimizer::{CostParams, EnumerationMode, Optimizer};
use serde::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-call fault accounting, merged into the server-wide counters by
/// the dispatch layer.
#[derive(Debug, Default, Clone)]
pub struct CallStats {
    /// Oracle faults injected while serving this call.
    pub faults_injected: u64,
    /// Retries that absorbed those faults.
    pub retries: u64,
    /// The response is a native-baseline fallback (`degraded: true`).
    pub degraded: bool,
    /// This call's failure tripped the breaker open.
    pub breaker_opened: bool,
    /// Budget burnt by fault-aborted oracle attempts (operational waste,
    /// never counted as sub-optimality).
    pub wasted_cost: f64,
}

/// One query template, warm-started from its artifact and ready to serve
/// concurrent requests (all request-handling state is per-call).
pub struct ServedQuery {
    name: String,
    ratio: f64,
    lambda: f64,
    surface: &'static EssSurface,
    opt: &'static Optimizer<'static>,
    ctx: EvalContext<'static>,
    bouquet: PlanBouquet<'static>,
    native: NativeChoice,
    faults: Option<Arc<FaultPlan>>,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
}

impl ServedQuery {
    /// Grounds the artifact into `'static` service state. Fails (with a
    /// human-readable message) if the artifact's query does not validate
    /// against `catalog` or its components disagree with each other.
    ///
    /// Leaks the query, surface and optimizer — intentional: served
    /// queries live for the daemon's lifetime.
    pub fn from_artifact(
        artifact: CompiledArtifact,
        catalog: &'static Catalog,
    ) -> Result<Self, String> {
        let CompiledArtifact {
            query,
            ratio,
            lambda,
            surface,
            contours: _,
            bouquet,
            rho_red,
            matrix,
        } = artifact;
        let name = query.name.clone();
        let query = &*Box::leak(Box::new(query));
        let surface: &'static EssSurface = &*Box::leak(Box::new(surface));
        let opt = Optimizer::new(
            catalog,
            query,
            CostParams::default(),
            EnumerationMode::LeftDeep,
        )
        .map_err(|e| format!("artifact query `{name}` rejected by catalog: {e}"))?;
        let opt: &'static Optimizer<'static> = &*Box::leak(Box::new(opt));
        let ctx = EvalContext::from_parts(surface, opt, matrix)
            .map_err(|e| format!("artifact `{name}`: {e}"))?;
        let bouquet = PlanBouquet::from_parts(surface, opt, ratio, lambda, bouquet, rho_red)
            .map_err(|e| format!("artifact `{name}`: {e}"))?;
        let native = NativeChoice::compute(surface, opt);
        Ok(Self {
            name,
            ratio,
            lambda,
            surface,
            opt,
            ctx,
            bouquet,
            native,
            faults: None,
            retry: RetryPolicy::no_sleep(6),
            breaker: CircuitBreaker::new(BreakerConfig::default()),
        })
    }

    /// Injects oracle faults from `plan` into every discovery run this
    /// query serves, absorbing transients under `retry`.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>, retry: RetryPolicy) -> Self {
        self.faults = Some(plan);
        self.retry = retry;
        self
    }

    /// Replaces the circuit-breaker configuration (threshold/cooldown).
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> Self {
        self.breaker = CircuitBreaker::new(cfg);
        self
    }

    /// The query template name requests address this query by.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-query health snapshot: breaker state and failure counters.
    pub fn health(&self) -> Value {
        let snap = self.breaker.snapshot();
        obj(vec![
            ("breaker", string(snap.state.name())),
            ("consecutive_failures", num(snap.consecutive as f64)),
            ("open_events", num(snap.open_events as f64)),
        ])
    }

    /// Snaps requested selectivities onto the grid; errors if the arity
    /// is wrong.
    fn snap(&self, qa: &[f64]) -> Result<(GridIdx, Vec<usize>), String> {
        let grid = self.surface.grid();
        if qa.len() != grid.ndims() {
            return Err(format!(
                "query `{}` has {} error-prone predicates, got {} selectivities",
                self.name,
                grid.ndims(),
                qa.len()
            ));
        }
        let coords: Vec<usize> = qa
            .iter()
            .enumerate()
            .map(|(j, &s)| grid.dim(j).nearest_idx(s))
            .collect();
        Ok((grid.flat(&coords), coords))
    }

    fn run_common(&self, algorithm: &str, qa_idx: GridIdx, coords: &[usize]) -> Vec<(&str, Value)> {
        let grid = self.surface.grid();
        vec![
            ("algorithm", string(algorithm)),
            ("query", string(&self.name)),
            ("qa_grid", num_arr(grid.sels(qa_idx))),
            ("qa_coords", num_arr(coords.iter().map(|&c| c as f64))),
            ("opt_cost", num(self.surface.opt_cost(qa_idx))),
        ]
    }

    fn report_fields(
        &self,
        report: &RunReport,
        qa_idx: GridIdx,
        guarantee: f64,
    ) -> Vec<(String, Value)> {
        let learnt = Value::Array(
            report
                .learnt
                .iter()
                .map(|l| match l {
                    Some(s) => Value::Num(*s),
                    None => Value::Null,
                })
                .collect(),
        );
        vec![
            ("total_cost".into(), num(report.total_cost)),
            (
                "sub_optimality".into(),
                num(report.sub_optimality(self.surface.opt_cost(qa_idx))),
            ),
            ("mso_guarantee".into(), num(guarantee)),
            ("executions".into(), num(report.executions() as f64)),
            ("completed".into(), Value::Bool(report.completed)),
            (
                "last_contour".into(),
                match report.last_contour() {
                    Some(i) => num(i as f64),
                    None => Value::Null,
                },
            ),
            ("learnt".into(), learnt),
        ]
    }

    /// The native-baseline response body. With a `degraded_reason`, the
    /// body is explicitly labelled as a fallback (`degraded: true`,
    /// plus the algorithm the client actually asked for).
    fn native_response(
        &self,
        requested: &str,
        qa_idx: GridIdx,
        coords: &[usize],
        degraded_reason: Option<&str>,
    ) -> Value {
        let mut fields = self.run_common("native", qa_idx, coords);
        let sub = self.native.sub_optimality(self.surface, self.opt, qa_idx);
        let opt_cost = self.surface.opt_cost(qa_idx);
        fields.push(("est_sels", num_arr(self.native.qe_sels.iter().copied())));
        fields.push(("est_cost", num(self.native.est_cost)));
        fields.push(("total_cost", num(sub * opt_cost)));
        fields.push(("sub_optimality", num(sub)));
        fields.push(("completed", Value::Bool(true)));
        match degraded_reason {
            Some(reason) => {
                fields.push(("degraded", Value::Bool(true)));
                fields.push(("degraded_reason", string(reason)));
                fields.push(("requested_algorithm", string(requested)));
            }
            None => fields.push(("degraded", Value::Bool(false))),
        }
        obj(fields)
    }

    /// Runs the discovery algorithm behind `method` against a fresh
    /// per-call oracle, wrapped in the fault plan when one is attached.
    fn run_discovery(
        &self,
        method: &str,
        qa_idx: GridIdx,
        stats: &mut CallStats,
    ) -> rqp_common::Result<(RunReport, f64, &'static str)> {
        let mut memo = SpillMemo::new();
        let mut cached = CachedOracle::at_grid(&self.ctx, qa_idx, &mut memo);
        let go = |oracle: &mut dyn ExecutionOracle| match method {
            "run_spillbound" => {
                let mut sb = SpillBound::new(self.surface, self.opt, self.ratio);
                let report = sb.run(oracle)?;
                Ok((report, sb.mso_guarantee(), "spillbound"))
            }
            "run_alignedbound" => {
                let mut ab = AlignedBound::new(self.surface, self.opt, self.ratio);
                let report = ab.run(oracle)?;
                Ok((report, ab.mso_guarantee(), "alignedbound"))
            }
            "run_planbouquet" => {
                let report = self.bouquet.run(oracle)?;
                Ok((report, self.bouquet.mso_guarantee(), "planbouquet"))
            }
            other => Err(RqpError::InvalidQuery(format!(
                "`{other}` is not a discovery method"
            ))),
        };
        match &self.faults {
            Some(plan) => {
                let mut faulty =
                    FaultyOracle::new(cached, plan.as_ref()).with_retry(self.retry.clone());
                let result = go(&mut faulty);
                let fs = faulty.stats();
                stats.faults_injected += fs.faults_injected;
                stats.retries += fs.retries;
                stats.wasted_cost += fs.wasted_cost;
                result
            }
            None => go(&mut cached),
        }
    }

    /// Runs `method` under the per-query circuit breaker: an open
    /// breaker (or a failure that opens it) is answered by the native
    /// baseline with `degraded: true` instead of an error — every
    /// request gets a well-formed response while the breaker recovers
    /// via its half-open probe.
    fn run_guarded(
        &self,
        method: &str,
        qa_idx: GridIdx,
        coords: &[usize],
        stats: &mut CallStats,
    ) -> Result<Value, (String, String)> {
        let requested = method.strip_prefix("run_").unwrap_or(method);
        if matches!(self.breaker.allow_attempt(), Attempt::Degrade) {
            stats.degraded = true;
            return Ok(self.native_response(
                requested,
                qa_idx,
                coords,
                Some("circuit breaker open; serving native fallback"),
            ));
        }
        match self.run_discovery(method, qa_idx, stats) {
            Ok((report, guarantee, algorithm)) => {
                self.breaker.record_success();
                let mut fields: Vec<(String, Value)> = self
                    .run_common(algorithm, qa_idx, coords)
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                fields.extend(self.report_fields(&report, qa_idx, guarantee));
                fields.push(("degraded".into(), Value::Bool(false)));
                Ok(Value::Object(fields))
            }
            Err(e @ RqpError::Fault(_)) => {
                stats.breaker_opened = self.breaker.record_failure();
                if self.breaker.is_open() {
                    stats.degraded = true;
                    Ok(self.native_response(
                        requested,
                        qa_idx,
                        coords,
                        Some("execution faults tripped the circuit breaker"),
                    ))
                } else {
                    Err((e.kind().into(), e.to_string()))
                }
            }
            Err(e) => Err((e.kind().into(), e.to_string())),
        }
    }

    /// Dispatches one `explain` / `run_*` method. Returns
    /// `Err((kind, message))` for protocol-level failures, plus the
    /// call's fault accounting.
    pub fn handle(&self, method: &str, qa: &[f64]) -> (Result<Value, (String, String)>, CallStats) {
        let mut stats = CallStats::default();
        let bad = |m: String| ("bad_request".to_string(), m);
        let result = match method {
            "explain" => Ok(self.explain()),
            "run_native" => self
                .snap(qa)
                .map_err(bad)
                .map(|(qa_idx, coords)| self.native_response("native", qa_idx, &coords, None)),
            "run_spillbound" | "run_alignedbound" | "run_planbouquet" => {
                match self.snap(qa).map_err(bad) {
                    Ok((qa_idx, coords)) => self.run_guarded(method, qa_idx, &coords, &mut stats),
                    Err(e) => Err(e),
                }
            }
            other => Err(("unknown_method".into(), format!("unknown method `{other}`"))),
        };
        (result, stats)
    }

    fn explain(&self) -> Value {
        let grid = self.surface.grid();
        let d = grid.ndims();
        let contours = self.bouquet.contours();
        obj(vec![
            ("query", string(&self.name)),
            ("ndims", num(d as f64)),
            ("grid_len", num(grid.len() as f64)),
            (
                "grid_points_per_dim",
                num_arr((0..d).map(|j| grid.dim(j).len() as f64)),
            ),
            ("posp_size", num(self.surface.posp_size() as f64)),
            // Surface accounting via the dense/lazy-unifying trait: a
            // dense artifact serves every cell, so `cells_materialized`
            // equals `grid_len`; a lazy warm start would report only the
            // contour cells its sparse artifact persisted.
            (
                "surface",
                obj(vec![
                    ("kind", string("dense")),
                    (
                        "cells_materialized",
                        num(SurfaceAccess::cells_materialized(self.surface) as f64),
                    ),
                    (
                        "optimizer_calls",
                        num(SurfaceAccess::optimizer_calls(self.surface) as f64),
                    ),
                ]),
            ),
            ("cmin", num(self.surface.cmin())),
            ("cmax", num(self.surface.cmax())),
            ("ratio", num(self.ratio)),
            ("lambda", num(self.lambda)),
            ("contours", num(contours.len() as f64)),
            ("contour_costs", num_arr(contours.costs().iter().copied())),
            ("rho_red", num(self.bouquet.rho_red() as f64)),
            (
                "guarantees",
                obj(vec![
                    ("spillbound", num(rqp_core::spillbound_guarantee(d))),
                    (
                        "alignedbound_lower",
                        num(rqp_core::aligned_guarantee_lower(d)),
                    ),
                    ("planbouquet", num(self.bouquet.mso_guarantee())),
                ]),
            ),
            (
                "native",
                obj(vec![
                    ("est_sels", num_arr(self.native.qe_sels.iter().copied())),
                    ("est_cost", num(self.native.est_cost)),
                ]),
            ),
        ])
    }
}

/// The set of query templates a server instance exposes, keyed by name.
#[derive(Default)]
pub struct Registry {
    queries: BTreeMap<String, ServedQuery>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a served query (replacing any previous one of the same name).
    pub fn insert(&mut self, q: ServedQuery) {
        self.queries.insert(q.name().to_string(), q);
    }

    /// Served query names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.queries.keys().cloned().collect()
    }

    /// Number of served queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Per-query health snapshots, keyed by query name.
    pub fn health(&self) -> Value {
        Value::Object(
            self.queries
                .iter()
                .map(|(name, q)| (name.clone(), q.health()))
                .collect(),
        )
    }

    /// Dispatches a query-addressed request to the right [`ServedQuery`],
    /// returning the response and the call's fault accounting.
    pub fn dispatch(&self, req: &Request) -> (Result<Value, (String, String)>, CallStats) {
        match req.method.as_str() {
            "list_queries" => (
                Ok(Value::Array(
                    self.names().into_iter().map(Value::String).collect(),
                )),
                CallStats::default(),
            ),
            _ => {
                let name = match req.query.as_deref() {
                    Some(n) => n,
                    None => {
                        return (
                            Err((
                                "bad_request".to_string(),
                                format!("method `{}` requires a `query` field", req.method),
                            )),
                            CallStats::default(),
                        )
                    }
                };
                match self.queries.get(name) {
                    Some(served) => served.handle(&req.method, &req.qa),
                    None => (
                        Err((
                            "unknown_query".to_string(),
                            format!(
                                "query `{name}` is not served (available: {})",
                                self.names().join(", ")
                            ),
                        )),
                        CallStats::default(),
                    ),
                }
            }
        }
    }
}
