//! LRU artifact-cache integration tests against a live server: the
//! whole suite is servable from a byte-bounded cache, eviction kicks in
//! under memory pressure, provenance counters (warm/cold/evicted)
//! surface in `stats`, and responses are byte-equal before and after
//! eviction — and across concurrent clients.

use rqp_artifacts::{ArtifactStore, CompiledArtifact};
use rqp_catalog::{Catalog, Column, ColumnStats, DataType, Table};
use rqp_common::MultiGrid;
use rqp_optimizer::{CostParams, EnumerationMode, Optimizer, Predicate, PredicateKind, QuerySpec};
use rqp_server::{serve, ArtifactCache, Client, Registry, ServedQuery, ServerConfig};
use std::path::PathBuf;

/// A 2-epp star query named `name` over a small synthetic catalog.
fn star2_named(name: &str) -> (Catalog, QuerySpec) {
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "fact",
        1_000_000,
        vec![
            Column::new("f1", DataType::Int, ColumnStats::uniform(10_000)).with_index(),
            Column::new("f2", DataType::Int, ColumnStats::uniform(1_000)).with_index(),
            Column::new("v", DataType::Int, ColumnStats::uniform(1_000)),
        ],
    ))
    .unwrap();
    for (dim, rows) in [("d1", 10_000u64), ("d2", 1_000)] {
        cat.add_table(Table::new(
            dim,
            rows,
            vec![
                Column::new("k", DataType::Int, ColumnStats::uniform(rows)).with_index(),
                Column::new("a", DataType::Int, ColumnStats::uniform(50)),
            ],
        ))
        .unwrap();
    }
    let query = QuerySpec {
        name: name.into(),
        relations: vec![0, 1, 2],
        predicates: vec![
            Predicate {
                label: "f-d1".into(),
                kind: PredicateKind::Join {
                    left: 0,
                    left_col: 0,
                    right: 1,
                    right_col: 0,
                },
            },
            Predicate {
                label: "f-d2".into(),
                kind: PredicateKind::Join {
                    left: 0,
                    left_col: 1,
                    right: 2,
                    right_col: 0,
                },
            },
        ],
        epps: vec![0, 1],
    };
    (cat, query)
}

const SUITE: [&str; 3] = ["suite_a", "suite_b", "suite_c"];

/// Compiles one artifact per suite query into a store under `root` and
/// returns the per-query resident size estimate.
fn build_store(root: &PathBuf, cat: &'static Catalog) -> usize {
    std::fs::create_dir_all(root).unwrap();
    let store = ArtifactStore::new(root.clone());
    let mut bytes = 0usize;
    for name in SUITE {
        let (_, q) = star2_named(name);
        let opt =
            Optimizer::new(cat, &q, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let artifact = CompiledArtifact::compile(&opt, MultiGrid::uniform(2, 1e-5, 8), 2.0, 0.2, 2);
        artifact.save(&store.path_for(name)).unwrap();
        // All three artifacts share a shape, so one measurement covers
        // the suite.
        let reloaded = CompiledArtifact::load(&store.path_for(name)).unwrap();
        bytes = ServedQuery::from_artifact(reloaded, cat)
            .unwrap()
            .approx_bytes();
    }
    bytes
}

#[test]
fn suite_serves_from_bounded_cache_with_byte_equal_responses() {
    let (cat, _) = star2_named("suite_a");
    let cat: &'static Catalog = Box::leak(Box::new(cat));
    let root = std::env::temp_dir().join(format!("rqp-cache-lru-test-{}", std::process::id()));
    let per_query = build_store(&root, cat);
    // Room for two resident queries, not three: serving the full suite
    // must evict.
    let max_bytes = per_query * 2 + per_query / 2;

    let store = ArtifactStore::new(root.clone());
    let registry = Registry::new().with_cache(ArtifactCache::new(store, cat, max_bytes));
    let handle = serve(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr;
    let mut c = Client::connect(addr).unwrap();

    // The whole suite is visible without anything resident yet.
    let listed = c.call_raw(r#"{"id":0,"method":"list_queries"}"#).unwrap();
    for name in SUITE {
        assert!(listed.contains(name), "{listed}");
    }

    // Single-threaded baseline across the suite: explain + a discovery
    // run per query. Sweeping all three queries overflows the 2-entry
    // bound, so these also exercise cold loads and eviction.
    let qa = [0.02, 0.4];
    let baseline: Vec<(String, String)> = SUITE
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let explain = c
                .call_raw(&rqp_server::request_line(
                    i as f64 * 10.0 + 1.0,
                    "explain",
                    Some(name),
                    &[],
                    None,
                ))
                .unwrap();
            let run = c
                .call_raw(&rqp_server::request_line(
                    i as f64 * 10.0 + 2.0,
                    "run_spillbound",
                    Some(name),
                    &qa,
                    None,
                ))
                .unwrap();
            assert!(explain.contains("\"ok\":true"), "{explain}");
            assert!(run.contains("\"ok\":true"), "{run}");
            (explain, run)
        })
        .collect();

    // After touching a, b, then c the cache held at most 2 entries, so
    // re-asking for every query forces at least one post-eviction
    // reload — responses must be byte-equal to the pre-eviction ones.
    for (i, name) in SUITE.iter().enumerate() {
        let explain = c
            .call_raw(&rqp_server::request_line(
                i as f64 * 10.0 + 1.0,
                "explain",
                Some(name),
                &[],
                None,
            ))
            .unwrap();
        let run = c
            .call_raw(&rqp_server::request_line(
                i as f64 * 10.0 + 2.0,
                "run_spillbound",
                Some(name),
                &qa,
                None,
            ))
            .unwrap();
        assert_eq!(explain, baseline[i].0, "explain changed after eviction");
        assert_eq!(run, baseline[i].1, "run_spillbound changed after eviction");
    }

    // 10 concurrent clients across all 3 suite queries: byte-identical
    // to the single-threaded baseline, through every warm/cold/evicted
    // path interleaving.
    let results: Vec<Vec<(String, String)>> = std::thread::scope(|s| {
        let baseline = &baseline;
        let handles: Vec<_> = (0..10)
            .map(|client| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    SUITE
                        .iter()
                        .enumerate()
                        .map(|(i, name)| {
                            // Vary the touch order per client so clients
                            // disagree about what is resident.
                            let (i, name) = if client % 2 == 0 {
                                (i, *name)
                            } else {
                                let j = SUITE.len() - 1 - i;
                                (j, SUITE[j])
                            };
                            let explain = c
                                .call_raw(&rqp_server::request_line(
                                    i as f64 * 10.0 + 1.0,
                                    "explain",
                                    Some(name),
                                    &[],
                                    None,
                                ))
                                .unwrap();
                            let run = c
                                .call_raw(&rqp_server::request_line(
                                    i as f64 * 10.0 + 2.0,
                                    "run_spillbound",
                                    Some(name),
                                    &qa,
                                    None,
                                ))
                                .unwrap();
                            assert_eq!(&explain, &baseline[i].0);
                            assert_eq!(&run, &baseline[i].1);
                            (explain, run)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(results.len(), 10);

    // Provenance counters: the sweeps forced cold loads and evictions,
    // the repeats hit warm entries, and residency respects the bound.
    let stats = c.call(99.0, "stats", None, &[], None).unwrap();
    let cache = stats.get("result").unwrap().get("cache").unwrap();
    let count = |k: &str| cache.get(k).unwrap().as_f64().unwrap();
    assert!(count("cold_loads") >= 4.0, "{cache:?}");
    assert!(count("evictions") >= 1.0, "{cache:?}");
    assert!(count("warm_hits") >= 1.0, "{cache:?}");
    assert_eq!(count("load_failures"), 0.0, "{cache:?}");
    assert!(count("resident_entries") <= 2.0, "{cache:?}");
    assert!(count("resident_bytes") <= max_bytes as f64, "{cache:?}");

    // Unknown names still produce the typed error, listing the suite.
    let r = c
        .call_raw(r#"{"id":100,"method":"run_spillbound","query":"nope","qa":[0.1,0.1]}"#)
        .unwrap();
    assert!(r.contains("\"kind\":\"unknown_query\""), "{r}");
    assert!(r.contains("suite_a"), "{r}");

    handle.stop();
    let _ = std::fs::remove_dir_all(&root);
}

/// A cold load takes the worker path (it must not block a poller
/// shard), and a thundering herd on one cold query is deduplicated to a
/// single disk load.
#[test]
fn thundering_herd_on_cold_query_loads_once() {
    let (cat, _) = star2_named("suite_a");
    let cat: &'static Catalog = Box::leak(Box::new(cat));
    let root = std::env::temp_dir().join(format!("rqp-cache-herd-test-{}", std::process::id()));
    let per_query = build_store(&root, cat);

    let store = ArtifactStore::new(root.clone());
    let registry = Registry::new().with_cache(ArtifactCache::new(store, cat, per_query * 4));
    let handle = serve(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr;

    let lines: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    c.call_raw(&rqp_server::request_line(
                        i as f64,
                        "explain",
                        Some("suite_b"),
                        &[],
                        None,
                    ))
                    .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for line in &lines {
        assert!(line.contains("\"ok\":true"), "{line}");
    }

    let mut c = Client::connect(addr).unwrap();
    let stats = c.call(9.0, "stats", None, &[], None).unwrap();
    let cache = stats.get("result").unwrap().get("cache").unwrap();
    let count = |k: &str| cache.get(k).unwrap().as_f64().unwrap();
    assert_eq!(count("cold_loads"), 1.0, "herd was not deduplicated");
    assert!(count("warm_hits") >= 7.0, "{cache:?}");

    handle.stop();
    let _ = std::fs::remove_dir_all(&root);
}
