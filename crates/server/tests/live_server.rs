//! Integration tests against a live server on an ephemeral port:
//! concurrent-client determinism, load shedding, queued-deadline
//! enforcement, and clean shutdown.

use rqp_artifacts::CompiledArtifact;
use rqp_catalog::{Catalog, Column, ColumnStats, DataType, Table};
use rqp_common::MultiGrid;
use rqp_faults::{FaultPlan, FaultSite, RetryPolicy};
use rqp_optimizer::{CostParams, EnumerationMode, Optimizer, Predicate, PredicateKind, QuerySpec};
use rqp_server::{serve, Client, Registry, ServedQuery, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

/// A 2-epp star query over a small synthetic catalog.
fn star2() -> (Catalog, QuerySpec) {
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "fact",
        1_000_000,
        vec![
            Column::new("f1", DataType::Int, ColumnStats::uniform(10_000)).with_index(),
            Column::new("f2", DataType::Int, ColumnStats::uniform(1_000)).with_index(),
            Column::new("v", DataType::Int, ColumnStats::uniform(1_000)),
        ],
    ))
    .unwrap();
    for (name, rows) in [("d1", 10_000u64), ("d2", 1_000)] {
        cat.add_table(Table::new(
            name,
            rows,
            vec![
                Column::new("k", DataType::Int, ColumnStats::uniform(rows)).with_index(),
                Column::new("a", DataType::Int, ColumnStats::uniform(50)),
            ],
        ))
        .unwrap();
    }
    let query = QuerySpec {
        name: "star2".into(),
        relations: vec![0, 1, 2],
        predicates: vec![
            Predicate {
                label: "f-d1".into(),
                kind: PredicateKind::Join {
                    left: 0,
                    left_col: 0,
                    right: 1,
                    right_col: 0,
                },
            },
            Predicate {
                label: "f-d2".into(),
                kind: PredicateKind::Join {
                    left: 0,
                    left_col: 1,
                    right: 2,
                    right_col: 0,
                },
            },
        ],
        epps: vec![0, 1],
    };
    (cat, query)
}

/// Compiles the star2 artifact and registers it on a leaked catalog.
fn registry() -> Registry {
    let (cat, q) = star2();
    let cat: &'static Catalog = Box::leak(Box::new(cat));
    let opt = Optimizer::new(cat, &q, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
    let artifact = CompiledArtifact::compile(&opt, MultiGrid::uniform(2, 1e-5, 8), 2.0, 0.2, 2);
    // Round-trip through the wire format: the server must work from
    // exactly what a file holds.
    let artifact = CompiledArtifact::from_bytes(&artifact.to_bytes()).unwrap();
    let mut reg = Registry::new();
    reg.insert(ServedQuery::from_artifact(artifact, cat).unwrap());
    reg
}

#[test]
fn concurrent_clients_get_deterministic_responses() {
    let handle = serve(
        registry(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr;

    const CLIENTS: usize = 10;
    let results: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let qa = [0.02, 0.4];
                    vec![
                        c.call_raw(&rqp_server::request_line(
                            1.0,
                            "run_spillbound",
                            Some("star2"),
                            &qa,
                            None,
                        ))
                        .unwrap(),
                        c.call_raw(&rqp_server::request_line(
                            2.0,
                            "run_planbouquet",
                            Some("star2"),
                            &qa,
                            None,
                        ))
                        .unwrap(),
                        c.call_raw(&rqp_server::request_line(
                            3.0,
                            "run_alignedbound",
                            Some("star2"),
                            &qa,
                            None,
                        ))
                        .unwrap(),
                        c.call_raw(&rqp_server::request_line(
                            4.0,
                            "run_native",
                            Some("star2"),
                            &qa,
                            None,
                        ))
                        .unwrap(),
                        c.call_raw(&rqp_server::request_line(
                            5.0,
                            "explain",
                            Some("star2"),
                            &[],
                            None,
                        ))
                        .unwrap(),
                    ]
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Byte-identical responses across all concurrent clients.
    for other in &results[1..] {
        assert_eq!(&results[0], other);
    }
    for line in &results[0] {
        assert!(line.contains("\"ok\":true"), "unexpected error: {line}");
    }
    assert!(results[0][0].contains("\"algorithm\":\"spillbound\""));
    assert!(results[0][0].contains("\"completed\":true"));
    // Dense surfaces report full materialization in explain's surface
    // accounting (8^2 grid = 64 cells).
    assert!(
        results[0][4].contains("\"kind\":\"dense\""),
        "{}",
        results[0][4]
    );
    assert!(
        results[0][4].contains("\"cells_materialized\":64"),
        "{}",
        results[0][4]
    );

    // The guarantee holds on the served run too.
    let mut c = Client::connect(addr).unwrap();
    let v = c
        .call(9.0, "run_spillbound", Some("star2"), &[0.02, 0.4], None)
        .unwrap();
    let result = v.get("result").unwrap();
    let subopt = result.get("sub_optimality").unwrap().as_f64().unwrap();
    let guarantee = result.get("mso_guarantee").unwrap().as_f64().unwrap();
    assert!(
        subopt <= guarantee * (1.0 + 1e-6),
        "{subopt} vs {guarantee}"
    );

    // Stats saw the traffic.
    let stats = c.call(10.0, "stats", None, &[], None).unwrap();
    let sb = stats
        .get("result")
        .unwrap()
        .get("methods")
        .unwrap()
        .get("run_spillbound")
        .unwrap();
    assert!(sb.get("requests").unwrap().as_f64().unwrap() >= (CLIENTS + 1) as f64);
    assert_eq!(sb.get("shed").unwrap().as_f64(), Some(0.0));

    handle.stop();
}

#[test]
fn overload_sheds_with_explicit_error() {
    let handle = serve(
        registry(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            allow_debug_sleep: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr;

    // Occupy the single worker with a slow request...
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.call_raw(r#"{"id":1,"method":"list_queries","sleep_ms":600}"#)
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));
    // ...fill the one queue slot...
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.call_raw(r#"{"id":2,"method":"list_queries","sleep_ms":100}"#)
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));
    // ...and watch the next offloaded request shed instead of hang.
    // (`sleep_ms` forces the worker-queue path; cheap methods without it
    // are answered inline by the poller shard and never queue.)
    let mut c = Client::connect(addr).unwrap();
    let shed = c
        .call_raw(r#"{"id":3,"method":"list_queries","sleep_ms":1}"#)
        .unwrap();
    assert!(
        shed.contains("\"ok\":false") && shed.contains("\"kind\":\"overloaded\""),
        "expected overloaded, got: {shed}"
    );

    assert!(slow.join().unwrap().contains("\"ok\":true"));
    assert!(queued.join().unwrap().contains("\"ok\":true"));

    // The shed shows up in stats.
    let stats = c.call(4.0, "stats", None, &[], None).unwrap();
    let lq = stats
        .get("result")
        .unwrap()
        .get("methods")
        .unwrap()
        .get("list_queries")
        .unwrap();
    assert!(lq.get("shed").unwrap().as_f64().unwrap() >= 1.0);
    assert!(handle.metrics().total_shed() >= 1);

    handle.stop();
}

#[test]
fn queued_deadline_is_enforced() {
    let handle = serve(
        registry(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 4,
            allow_debug_sleep: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr;

    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.call_raw(r#"{"id":1,"method":"list_queries","sleep_ms":500}"#)
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));
    // This request can only be dequeued after ~350ms — past its deadline.
    // (`sleep_ms` keeps it on the worker-queue path behind the sleeper.)
    let mut c = Client::connect(addr).unwrap();
    let late = c
        .call_raw(r#"{"id":2,"method":"list_queries","deadline_ms":50,"sleep_ms":1}"#)
        .unwrap();
    assert!(
        late.contains("\"kind\":\"deadline_exceeded\""),
        "expected deadline_exceeded, got: {late}"
    );
    assert!(slow.join().unwrap().contains("\"ok\":true"));
    handle.stop();
}

/// Under a transient fault plan the retry layer absorbs every injected
/// fault — responses stay full-fidelity (`degraded:false`) — while the
/// `stats` and `health` methods surface what happened underneath.
#[test]
fn fault_counters_and_health_are_exposed() {
    let (cat, q) = star2();
    let cat: &'static Catalog = Box::leak(Box::new(cat));
    let opt = Optimizer::new(cat, &q, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
    let artifact = CompiledArtifact::compile(&opt, MultiGrid::uniform(2, 1e-5, 8), 2.0, 0.2, 2);
    let plan = Arc::new(
        FaultPlan::new(21)
            .with_site(FaultSite::OracleSpill, 0.2)
            .with_site(FaultSite::OracleFull, 0.2),
    );
    let mut reg = Registry::new();
    reg.insert(
        ServedQuery::from_artifact(artifact, cat)
            .unwrap()
            .with_faults(Arc::clone(&plan), RetryPolicy::no_sleep(6)),
    );
    let handle = serve(reg, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut c = Client::connect(handle.addr).unwrap();

    for (i, qa) in [[0.02, 0.4], [0.1, 0.1], [0.9, 0.01]].iter().enumerate() {
        let r = c
            .call_raw(&rqp_server::request_line(
                i as f64,
                "run_spillbound",
                Some("star2"),
                qa,
                None,
            ))
            .unwrap();
        assert!(r.contains("\"ok\":true"), "{r}");
        assert!(r.contains("\"degraded\":false"), "{r}");
    }

    // The plan fired (seed 21 injects on these runs) and every fault
    // was absorbed by a retry, so the breaker never opened.
    assert!(plan.injected_total() >= 1, "fault plan never fired");
    let stats = c.call(10.0, "stats", None, &[], None).unwrap();
    let faults = stats.get("result").unwrap().get("faults").unwrap();
    let count = |k: &str| faults.get(k).unwrap().as_f64().unwrap();
    assert_eq!(count("faults_injected"), plan.injected_total() as f64);
    assert!(count("retries") >= count("faults_injected"));
    assert_eq!(count("breaker_open"), 0.0);
    assert_eq!(count("degraded_responses"), 0.0);

    let health = c.call(11.0, "health", None, &[], None).unwrap();
    let breaker = health
        .get("result")
        .unwrap()
        .get("queries")
        .unwrap()
        .get("star2")
        .unwrap();
    assert_eq!(breaker.get("breaker").unwrap().as_str(), Some("closed"));
    assert_eq!(breaker.get("open_events").unwrap().as_f64(), Some(0.0));

    handle.stop();
}

#[test]
fn errors_are_typed_and_shutdown_stops() {
    let handle = serve(registry(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr;
    let mut c = Client::connect(addr).unwrap();

    let r = c.call_raw("this is not json").unwrap();
    assert!(r.contains("\"kind\":\"bad_request\""), "{r}");
    let r = c
        .call_raw(r#"{"id":1,"method":"run_spillbound","query":"nope","qa":[0.1,0.1]}"#)
        .unwrap();
    assert!(r.contains("\"kind\":\"unknown_query\""), "{r}");
    let r = c
        .call_raw(r#"{"id":2,"method":"frobnicate","query":"star2"}"#)
        .unwrap();
    assert!(r.contains("\"kind\":\"unknown_method\""), "{r}");
    let r = c
        .call_raw(r#"{"id":3,"method":"run_spillbound","query":"star2","qa":[0.1]}"#)
        .unwrap();
    assert!(r.contains("\"kind\":\"bad_request\""), "{r}");

    let r = c.call_raw(r#"{"id":4,"method":"shutdown"}"#).unwrap();
    assert!(r.contains("\"stopping\":true"), "{r}");
    // wait() returns because the shutdown request flipped the stop flag.
    assert!(handle.is_stopped());
    handle.wait();
}

/// A burst of idle connections beyond `max_connections` degrades with a
/// typed `overloaded` shed instead of unbounded per-connection threads,
/// and capacity is reclaimed once the idle connections go away.
#[test]
fn connection_flood_sheds_with_typed_error() {
    use std::io::BufRead;

    let handle = serve(
        registry(),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr;

    // Fill every slot with idle connections that never send a byte.
    let idle: Vec<std::net::TcpStream> = (0..4)
        .map(|_| std::net::TcpStream::connect(addr).unwrap())
        .collect();
    // The acceptor registers serially, so once it has accepted a 5th
    // connect, all 4 idle ones are counted. Give it a beat.
    std::thread::sleep(Duration::from_millis(100));

    // The flood overflow is answered with a typed shed and closed —
    // without the client sending anything.
    let overflow = std::net::TcpStream::connect(addr).unwrap();
    overflow
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = std::io::BufReader::new(overflow);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"ok\":false") && line.contains("\"kind\":\"overloaded\""),
        "expected typed connect shed, got: {line}"
    );
    let mut eof = String::new();
    assert_eq!(reader.read_line(&mut eof).unwrap(), 0, "shed must close");
    assert!(handle.metrics().total_shed() >= 1);

    // Hanging up the idle connections frees their slots (the shards
    // detect EOF); a fresh connect is then served normally.
    drop(idle);
    std::thread::sleep(Duration::from_millis(100));
    let mut c = Client::connect(addr).unwrap();
    let r = c.call_raw(r#"{"id":1,"method":"list_queries"}"#).unwrap();
    assert!(r.contains("\"ok\":true"), "{r}");

    handle.stop();
}

/// Four workers must drain four queued sleeps concurrently: the old
/// `Mutex<Receiver>` held across `recv_timeout` serialized dequeues on
/// one lock. Wall-clock well under the serialized 1200ms proves the
/// per-worker queues dequeue in parallel.
#[test]
fn workers_dequeue_concurrently() {
    let handle = serve(
        registry(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            queue_capacity: 8,
            // One shard so its round-robin lands one job per worker.
            shards: 1,
            allow_debug_sleep: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr;

    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for i in 0..4 {
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let r = c
                    .call_raw(&format!(
                        r#"{{"id":{i},"method":"list_queries","sleep_ms":300}}"#
                    ))
                    .unwrap();
                assert!(r.contains("\"ok\":true"), "{r}");
            });
        }
    });
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(600),
        "4 workers took {elapsed:?} for 4 concurrent 300ms jobs — dequeues are serialized"
    );

    handle.stop();
}

/// Shutdown is condvar/waker-driven, not polled: stopping an idle
/// server (signal + join of acceptor, shards, and workers) completes in
/// well under 10ms. The old implementation slept 50ms per wait() poll
/// and 20ms per accept poll.
#[test]
fn shutdown_latency_is_under_10ms() {
    let handle = serve(registry(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    // A registered idle connection must not delay shutdown either.
    let _idle = std::net::TcpStream::connect(handle.addr).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let it register

    let t0 = std::time::Instant::now();
    handle.stop();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(10),
        "stop() took {elapsed:?} — shutdown is polling, not event-driven"
    );
}

/// Per-tenant admission quotas: a tenant at its in-flight cap sheds
/// with a typed `overloaded` error naming the quota, other tenants are
/// unaffected, and capacity returns when the tenant's work completes.
#[test]
fn tenant_quota_sheds_only_the_noisy_tenant() {
    let handle = serve(
        registry(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            queue_capacity: 16,
            tenant_quota: Some(1),
            allow_debug_sleep: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr;

    // Tenant `alice` occupies her single slot with a slow request.
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.call_raw(r#"{"id":1,"method":"list_queries","sleep_ms":400,"tenant":"alice"}"#)
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));

    let mut c = Client::connect(addr).unwrap();
    // Alice's second in-flight request is shed at her quota...
    let shed = c
        .call_raw(r#"{"id":2,"method":"list_queries","sleep_ms":1,"tenant":"alice"}"#)
        .unwrap();
    assert!(
        shed.contains("\"kind\":\"overloaded\"") && shed.contains("quota"),
        "expected tenant-quota shed, got: {shed}"
    );
    // ...while `bob` and the anonymous tenant sail through.
    let ok = c
        .call_raw(r#"{"id":3,"method":"list_queries","sleep_ms":1,"tenant":"bob"}"#)
        .unwrap();
    assert!(ok.contains("\"ok\":true"), "{ok}");
    let ok = c
        .call_raw(r#"{"id":4,"method":"list_queries","sleep_ms":1}"#)
        .unwrap();
    assert!(ok.contains("\"ok\":true"), "{ok}");

    // Once alice's slow request completes, her quota slot is released.
    assert!(slow.join().unwrap().contains("\"ok\":true"));
    let ok = c
        .call_raw(r#"{"id":5,"method":"list_queries","sleep_ms":1,"tenant":"alice"}"#)
        .unwrap();
    assert!(ok.contains("\"ok\":true"), "{ok}");

    handle.stop();
}
