//! Storage tuning knobs with `from_env` parsing.
//!
//! Follows the `RQP_THREADS` / `RQP_FAULT_SEED` convention used
//! elsewhere in the workspace, except that invalid values are typed
//! [`StorageError::Config`] errors rather than silently ignored — a
//! mistyped pool budget must not quietly run the experiment in-memory.

use crate::page::PAGE_HEADER_LEN;
use crate::StorageError;

/// Default on-disk page size in bytes.
pub const DEFAULT_PAGE_SIZE: usize = 8192;
/// Default buffer-pool frame budget.
pub const DEFAULT_POOL_FRAMES: usize = 256;

/// Env var overriding the page size.
pub const ENV_PAGE_SIZE: &str = "RQP_PAGE_SIZE";
/// Env var overriding the pool frame budget.
pub const ENV_POOL_FRAMES: &str = "RQP_POOL_FRAMES";
/// Env var enabling the intent journal (`1` / `true` to enable).
pub const ENV_JOURNAL: &str = "RQP_JOURNAL";

/// Page size and frame budget for a [`crate::BufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageConfig {
    /// Bytes per page; every heap file in a pool shares one size.
    pub page_size: usize,
    /// Frames the pool may hold resident at once.
    pub pool_frames: usize,
    /// Bracket multi-step mutations (heap loads, spill files) with
    /// intent-journal records so crash recovery can roll them back.
    pub journal: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self {
            page_size: DEFAULT_PAGE_SIZE,
            pool_frames: DEFAULT_POOL_FRAMES,
            journal: false,
        }
    }
}

impl StorageConfig {
    /// Builder: page size in bytes.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Builder: pool frame budget.
    pub fn with_pool_frames(mut self, frames: usize) -> Self {
        self.pool_frames = frames;
        self
    }

    /// Builder: enable the intent journal.
    pub fn with_journal(mut self, enabled: bool) -> Self {
        self.journal = enabled;
        self
    }

    /// Rejects configurations the pool cannot run with.
    pub fn validated(self) -> Result<Self, StorageError> {
        if self.page_size <= PAGE_HEADER_LEN + 10 {
            return Err(StorageError::Config(format!(
                "page_size {} B leaves no room for tuples (header is {PAGE_HEADER_LEN} B)",
                self.page_size
            )));
        }
        if self.page_size > u16::MAX as usize {
            return Err(StorageError::Config(format!(
                "page_size {} B exceeds the 16-bit slot-offset limit of {}",
                self.page_size,
                u16::MAX
            )));
        }
        if self.pool_frames < 2 {
            return Err(StorageError::Config(format!(
                "pool_frames {} is too small: a scan and a spill writer need at least 2 frames",
                self.pool_frames
            )));
        }
        Ok(self)
    }

    /// Reads `RQP_PAGE_SIZE` / `RQP_POOL_FRAMES`, falling back to the
    /// defaults when unset. Set-but-invalid values are typed errors.
    pub fn from_env() -> Result<Self, StorageError> {
        let mut cfg = Self::default();
        if let Ok(raw) = std::env::var(ENV_PAGE_SIZE) {
            cfg.page_size = raw.trim().parse().map_err(|_| {
                StorageError::Config(format!("{ENV_PAGE_SIZE}={raw:?} is not a byte count"))
            })?;
        }
        if let Ok(raw) = std::env::var(ENV_POOL_FRAMES) {
            cfg.pool_frames = raw.trim().parse().map_err(|_| {
                StorageError::Config(format!("{ENV_POOL_FRAMES}={raw:?} is not a frame count"))
            })?;
        }
        if let Ok(raw) = std::env::var(ENV_JOURNAL) {
            cfg.journal = match raw.trim() {
                "1" | "true" | "yes" => true,
                "0" | "false" | "no" | "" => false,
                other => {
                    return Err(StorageError::Config(format!(
                        "{ENV_JOURNAL}={other:?} is not a boolean (use 1/0)"
                    )))
                }
            };
        }
        cfg.validated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(StorageConfig::default().validated().is_ok());
    }

    #[test]
    fn tiny_pool_and_tiny_page_are_typed_errors() {
        let e = StorageConfig::default()
            .with_pool_frames(1)
            .validated()
            .unwrap_err();
        assert!(matches!(e, StorageError::Config(_)), "{e:?}");
        let e = StorageConfig::default()
            .with_page_size(16)
            .validated()
            .unwrap_err();
        assert!(matches!(e, StorageError::Config(_)), "{e:?}");
        let e = StorageConfig::default()
            .with_page_size(1 << 20)
            .validated()
            .unwrap_err();
        assert!(matches!(e, StorageError::Config(_)), "{e:?}");
    }

    #[test]
    fn env_parsing_yields_typed_errors_on_garbage() {
        // Env mutation is process-global; keep it in one test and
        // restore before asserting anything else.
        std::env::set_var(ENV_POOL_FRAMES, "many");
        let e = StorageConfig::from_env().unwrap_err();
        std::env::remove_var(ENV_POOL_FRAMES);
        assert!(matches!(e, StorageError::Config(_)), "{e:?}");

        std::env::set_var(ENV_PAGE_SIZE, "4096");
        std::env::set_var(ENV_POOL_FRAMES, "64");
        let cfg = StorageConfig::from_env().unwrap();
        std::env::remove_var(ENV_PAGE_SIZE);
        std::env::remove_var(ENV_POOL_FRAMES);
        assert_eq!(cfg.page_size, 4096);
        assert_eq!(cfg.pool_frames, 64);
    }
}
