//! Heap-file table store: a whole dataset materialized into slotted
//! pages and served back through the buffer pool.
//!
//! [`PagedStore`] is the out-of-core counterpart of the executor's
//! in-memory `DataStore`. Materialization is a deterministic bulk load
//! (row-major into sealed pages, bypassing the pool); all subsequent
//! access — scans, index builds, ground-truth measurement, spill
//! output — goes through pool pins and is therefore subject to the
//! frame budget and the page-level fault sites.

use crate::journal::{Intent, IntentKind, Journal};
use crate::pool::{BufferPool, FileId};
use crate::view::{PagedTableRef, SpillSink, TableRef, TableStore};
use crate::{ColumnIndex, PageBuf, StorageConfig, StorageError};
use rqp_catalog::{Catalog, ColId, DataSet, TableId};
use rqp_faults::{crash, FaultPlan};
use rqp_obs::MetricsRegistry;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-unique suffix for scratch directories.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
struct TableMeta {
    file: FileId,
    rows: usize,
    ncols: usize,
    /// Tuples per page at this store's page size.
    cap: usize,
}

/// A dataset stored as checksummed heap files behind a [`BufferPool`].
#[derive(Debug)]
pub struct PagedStore {
    pool: BufferPool,
    tables: HashMap<TableId, TableMeta>,
    indexes: HashMap<(TableId, ColId), ColumnIndex>,
    dir: PathBuf,
    registry: MetricsRegistry,
    spill_seq: AtomicU64,
    journal: Option<Mutex<Journal>>,
    /// Scratch stores delete their directory on drop; stores
    /// materialized into a caller-owned directory do not.
    ephemeral: bool,
}

impl PagedStore {
    /// Materializes `data` into heap files under a scratch directory
    /// with a fresh metrics registry. Files are deleted on drop.
    pub fn materialize(
        catalog: &Catalog,
        data: &DataSet,
        config: StorageConfig,
    ) -> Result<Self, StorageError> {
        Self::materialize_with(catalog, data, config, MetricsRegistry::new())
    }

    /// As [`PagedStore::materialize`], metering through `registry`.
    pub fn materialize_with(
        catalog: &Catalog,
        data: &DataSet,
        config: StorageConfig,
        registry: MetricsRegistry,
    ) -> Result<Self, StorageError> {
        let dir = std::env::temp_dir().join(format!(
            "rqp-storage-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        Self::build(catalog, data, config, registry, &dir, true)
    }

    /// Materializes into a caller-owned directory that survives the
    /// store (nothing is deleted on drop). This is what crash-recovery
    /// harnesses use: the directory — heap files, spill files and the
    /// journal — is exactly the state a restarted process finds.
    pub fn materialize_in(
        catalog: &Catalog,
        data: &DataSet,
        config: StorageConfig,
        registry: MetricsRegistry,
        dir: &Path,
    ) -> Result<Self, StorageError> {
        Self::build(catalog, data, config, registry, dir, false)
    }

    fn build(
        catalog: &Catalog,
        data: &DataSet,
        config: StorageConfig,
        registry: MetricsRegistry,
        dir: &Path,
        ephemeral: bool,
    ) -> Result<Self, StorageError> {
        let config = config.validated()?;
        let dir = dir.to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut journal = if config.journal {
            Some(Journal::open(&dir)?)
        } else {
            None
        };
        let pool = BufferPool::new(config, &registry)?;

        let mut tables = HashMap::new();
        for (tid, _table) in catalog.tables().iter().enumerate() {
            let Some(dt) = data.table(tid) else { continue };
            let ncols = dt.columns.len();
            if ncols == 0 {
                continue;
            }
            let cap = PageBuf::capacity(config.page_size, ncols);
            if cap == 0 {
                return Err(StorageError::Config(format!(
                    "page_size {} B cannot hold one {ncols}-column tuple of table {}",
                    config.page_size, dt.name
                )));
            }
            let path = dir.join(format!("t{tid}_{}.rqp", dt.name));
            let intent = journal
                .as_mut()
                .map(|j| j.begin_durable(IntentKind::HeapExtend, &path))
                .transpose()?;
            write_heap_file(&path, config.page_size, ncols, dt)?;
            if let (Some(j), Some(intent)) = (journal.as_mut(), intent) {
                j.commit(intent, 0)?;
            }
            let file = pool.register_file(&path, &dt.name)?;
            tables.insert(
                tid,
                TableMeta {
                    file,
                    rows: dt.rows(),
                    ncols,
                    cap,
                },
            );
        }
        if let Some(j) = journal.as_mut() {
            // One barrier covers every heap-load commit.
            j.barrier()?;
        }

        // Secondary indexes stream the indexed columns back through
        // the pool, so even index builds respect the frame budget.
        let mut indexes = HashMap::new();
        for (tid, table) in catalog.tables().iter().enumerate() {
            let Some(meta) = tables.get(&tid) else {
                continue;
            };
            for (cid, col) in table.columns.iter().enumerate() {
                if col.indexed {
                    let vals = gather_column(&pool, meta, cid)?;
                    indexes.insert((tid, cid), ColumnIndex::build(&vals));
                }
            }
        }

        Ok(Self {
            pool,
            tables,
            indexes,
            dir,
            registry,
            spill_seq: AtomicU64::new(0),
            journal: journal.map(Mutex::new),
            ephemeral,
        })
    }

    /// Arms page-level fault injection. Call *after* ground-truth
    /// measurement so the fault-shot sequence consumed by a run is
    /// independent of setup traffic and replays bit-identically.
    pub fn set_faults(&self, plan: Option<Arc<FaultPlan>>) {
        self.pool.set_faults(plan);
    }

    /// The metrics registry this store's pool reports into.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The buffer pool (for counter inspection in tests and benches).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

impl Drop for PagedStore {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

/// Bulk-loads one table into sealed pages at `path` (direct writes; the
/// pool is not involved in the initial load).
fn write_heap_file(
    path: &Path,
    page_size: usize,
    ncols: usize,
    dt: &rqp_catalog::DataTable,
) -> Result<(), StorageError> {
    let mut fh = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut page_no = 0u64;
    let mut page = PageBuf::new(page_size, ncols, page_no);
    let mut row = Vec::with_capacity(ncols);
    for r in 0..dt.rows() {
        row.clear();
        for c in 0..ncols {
            row.push(dt.columns[c][r]);
        }
        if !page.push(&row) {
            page.seal();
            fh.write_all(page.bytes())?;
            page_no += 1;
            page = PageBuf::new(page_size, ncols, page_no);
            assert!(page.push(&row), "fresh page accepts one tuple");
        }
    }
    if page.ntuples() > 0 {
        page.seal();
        fh.write_all(page.bytes())?;
    }
    fh.flush()?;
    Ok(())
}

/// Reads one full column through the pool, page by page in row order.
fn gather_column(
    pool: &BufferPool,
    meta: &TableMeta,
    col: usize,
) -> Result<Vec<i64>, StorageError> {
    let mut out = Vec::with_capacity(meta.rows);
    let npages = meta.rows.div_ceil(meta.cap) as u64;
    for p in 0..npages {
        let pin = pool.pin(meta.file, p)?;
        pin.with(|pg| {
            for s in 0..pg.ntuples() {
                out.push(pg.value(s, col));
            }
        });
    }
    Ok(out)
}

impl TableStore for PagedStore {
    fn table_ref(&self, t: TableId) -> Option<TableRef<'_>> {
        self.tables.get(&t).map(|m| {
            TableRef::Paged(PagedTableRef {
                pool: &self.pool,
                file: m.file,
                rows: m.rows,
                ncols: m.ncols,
                cap: m.cap,
            })
        })
    }

    fn index(&self, t: TableId, c: ColId) -> Option<&ColumnIndex> {
        self.indexes.get(&(t, c))
    }

    /// Identical arithmetic to `DataSet::true_join_selectivity`, with
    /// the columns streamed through the pool — the measured qa must be
    /// bit-identical across backends.
    fn true_join_selectivity(&self, l: (TableId, ColId), r: (TableId, ColId)) -> Option<f64> {
        let lm = self.tables.get(&l.0)?;
        let rm = self.tables.get(&r.0)?;
        let lc = gather_column(&self.pool, lm, l.1).ok()?;
        let rc = gather_column(&self.pool, rm, r.1).ok()?;
        if lc.is_empty() || rc.is_empty() {
            return Some(0.0);
        }
        let mut counts: HashMap<i64, u64> = HashMap::new();
        for &v in &rc {
            *counts.entry(v).or_insert(0) += 1;
        }
        let matches: u128 = lc
            .iter()
            .map(|v| counts.get(v).copied().unwrap_or(0) as u128)
            .sum();
        Some(matches as f64 / (lc.len() as f64 * rc.len() as f64))
    }

    /// Identical arithmetic to `DataSet::true_le_selectivity`.
    fn true_le_selectivity(&self, t: TableId, c: ColId, v: i64) -> Option<f64> {
        let m = self.tables.get(&t)?;
        let col = gather_column(&self.pool, m, c).ok()?;
        if col.is_empty() {
            return Some(0.0);
        }
        let hits = col.iter().filter(|&&x| x <= v).count();
        Some(hits as f64 / col.len() as f64)
    }

    fn spill_sink(&self) -> Option<Box<dyn SpillSink + '_>> {
        let seq = self.spill_seq.fetch_add(1, Ordering::Relaxed);
        Some(Box::new(PooledSpillWriter {
            pool: &self.pool,
            path: self.dir.join(format!("spill-{seq}.rqp")),
            journal: self.journal.as_ref(),
            intent: None,
            file: None,
            page: None,
            page_no: 0,
            rows: 0,
        }))
    }
}

/// Spill-output writer that pushes full pages through the pool as dirty
/// frames. The file and page width are sized lazily from the first row;
/// on drop the whole spill file is discarded and its frames released.
pub struct PooledSpillWriter<'a> {
    pool: &'a BufferPool,
    path: PathBuf,
    journal: Option<&'a Mutex<Journal>>,
    intent: Option<Intent>,
    file: Option<(FileId, usize)>,
    page: Option<PageBuf>,
    page_no: u64,
    rows: u64,
}

impl SpillSink for PooledSpillWriter<'_> {
    fn append(&mut self, row: &[i64]) -> Result<(), StorageError> {
        let (file, ncols) = match self.file {
            Some(f) => f,
            None => {
                if let Some(j) = self.journal {
                    let intent = j
                        .lock()
                        .unwrap()
                        .begin(IntentKind::SpillCreate, &self.path)?;
                    self.intent = Some(intent);
                }
                let id = self.pool.register_file(&self.path, "spill")?;
                self.file = Some((id, row.len()));
                (id, row.len())
            }
        };
        let page_size = self.pool.page_size();
        let page = self
            .page
            .get_or_insert_with(|| PageBuf::new(page_size, ncols, self.page_no));
        if !page.push(row) {
            let full = self.page.take().expect("page present");
            self.pool.write_through(file, self.page_no, full)?;
            crash::hit(crash::MID_SPILL_WRITE);
            self.page_no += 1;
            let mut fresh = PageBuf::new(page_size, ncols, self.page_no);
            assert!(fresh.push(row), "fresh page accepts one tuple");
            self.page = Some(fresh);
        }
        self.rows += 1;
        Ok(())
    }

    fn finish(&mut self) -> Result<u64, StorageError> {
        if let (Some((file, _)), Some(page)) = (self.file, self.page.take()) {
            if page.ntuples() > 0 {
                self.pool.write_through(file, self.page_no, page)?;
            }
        }
        if let Some((file, _)) = self.file {
            // Flush barrier at the spill boundary: deferred write-through
            // I/O errors surface here, to this writer, as typed errors —
            // not inside whichever future pin happens to evict the frame.
            let epoch = self.pool.flush_file(file)?;
            if let (Some(j), Some(intent)) = (self.journal, self.intent.take()) {
                j.lock().unwrap().commit(intent, epoch)?;
            }
        }
        Ok(self.rows)
    }
}

impl Drop for PooledSpillWriter<'_> {
    fn drop(&mut self) {
        // Spill output is by definition discarded: free the frames it
        // occupies and delete the file.
        if let Some((file, _)) = self.file {
            self.pool.release_file(file);
        }
        // An intent still open here means the writer died before
        // finish(); the file is gone, so record the abort (best-effort).
        if let (Some(j), Some(intent)) = (self.journal, self.intent.take()) {
            if let Ok(mut j) = j.lock() {
                let _ = j.abort(intent);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::datagen::{ColumnGen, GenSpec, TableGenSpec};
    use rqp_catalog::{Column, ColumnStats, DataType, Table};

    fn small_dataset() -> (Catalog, DataSet) {
        let mut cat = Catalog::new();
        let t = cat
            .add_table(Table::new(
                "t",
                0,
                vec![
                    Column::new("k", DataType::Int, ColumnStats::uniform(200)).with_index(),
                    Column::new("v", DataType::Int, ColumnStats::uniform(10)),
                ],
            ))
            .unwrap();
        let data = DataSet::generate(
            &cat,
            &GenSpec {
                seed: 9,
                tables: vec![TableGenSpec {
                    table: t,
                    rows: 200,
                    columns: vec![ColumnGen::Serial, ColumnGen::Uniform { domain: 10 }],
                }],
            },
        )
        .unwrap();
        (cat, data)
    }

    #[test]
    fn paged_store_round_trips_rows_and_indexes() {
        let (cat, data) = small_dataset();
        let cfg = StorageConfig::default()
            .with_page_size(256)
            .with_pool_frames(4);
        let store = PagedStore::materialize(&cat, &data, cfg).unwrap();
        let mem = data.table(0).unwrap();
        let view = store.table_ref(0).unwrap();
        assert_eq!(view.rows(), 200);
        assert_eq!(view.ncols(), 2);
        let mut cur = view.cursor();
        for r in 0..200 {
            assert_eq!(cur.value(r, 0).unwrap(), mem.col(0)[r]);
            assert_eq!(cur.value(r, 1).unwrap(), mem.col(1)[r]);
        }
        assert!(
            store.pool().metrics().evictions.value() > 0,
            "200 rows through 4 small frames must evict"
        );
        assert_eq!(store.index(0, 0).unwrap().eq(42), &[42]);
        assert!(store.index(0, 1).is_none());
    }

    #[test]
    fn ground_truth_matches_in_memory_bitwise() {
        let (cat, data) = small_dataset();
        let cfg = StorageConfig::default()
            .with_page_size(256)
            .with_pool_frames(4);
        let store = PagedStore::materialize(&cat, &data, cfg).unwrap();
        let want = data.true_le_selectivity(0, 1, 4).unwrap();
        let got = store.true_le_selectivity(0, 1, 4).unwrap();
        assert_eq!(want.to_bits(), got.to_bits(), "bit-identical selectivity");
    }

    #[test]
    fn journaled_store_brackets_heap_and_spill_mutations() {
        let (cat, data) = small_dataset();
        let cfg = StorageConfig::default()
            .with_page_size(256)
            .with_pool_frames(4)
            .with_journal(true);
        let dir = std::env::temp_dir().join(format!(
            "rqp-heap-journal-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store =
            PagedStore::materialize_in(&cat, &data, cfg, MetricsRegistry::new(), &dir).unwrap();
        {
            let mut sink = store.spill_sink().unwrap();
            for i in 0..100 {
                sink.append(&[i, i * 2]).unwrap();
            }
            assert_eq!(sink.finish().unwrap(), 100);
        }
        drop(store);
        // A caller-owned directory survives the store; every bracketed
        // mutation committed, so recovery has nothing to roll back.
        assert!(dir.join("t0_t.rqp").exists(), "heap file persisted");
        let rep = Journal::recover(&dir).unwrap();
        assert_eq!(rep.rolled_back, 0, "{rep:?}");
        assert!(rep.replayed >= 2, "heap load + spill commit: {rep:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_sink_writes_through_the_pool_and_cleans_up() {
        let (cat, data) = small_dataset();
        let cfg = StorageConfig::default()
            .with_page_size(256)
            .with_pool_frames(4);
        let store = PagedStore::materialize(&cat, &data, cfg).unwrap();
        {
            let mut sink = store.spill_sink().unwrap();
            for i in 0..100 {
                sink.append(&[i, i * 2, i * 3]).unwrap();
            }
            assert_eq!(sink.finish().unwrap(), 100);
        }
        assert!(
            store.pool().metrics().spill_pages.value() > 0,
            "spill pages went through the pool"
        );
        assert!(
            std::fs::read_dir(&store.dir)
                .unwrap()
                .filter_map(Result::ok)
                .all(|e| !e.file_name().to_string_lossy().starts_with("spill-")),
            "spill file deleted on drop"
        );
    }
}
