//! Secondary column index shared by the in-memory and paged backends.

use std::collections::BTreeMap;

/// A B-tree index over one column: value → row ids (sorted by insertion).
#[derive(Debug, Clone, Default)]
pub struct ColumnIndex {
    tree: BTreeMap<i64, Vec<u32>>,
}

impl ColumnIndex {
    /// Builds the index over a column slice.
    pub fn build(col: &[i64]) -> Self {
        let mut tree: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for (i, &v) in col.iter().enumerate() {
            tree.entry(v).or_default().push(i as u32);
        }
        Self { tree }
    }

    /// Row ids with exactly value `v`.
    pub fn eq(&self, v: i64) -> &[u32] {
        self.tree.get(&v).map_or(&[], Vec::as_slice)
    }

    /// Row ids with value `<= v`, in value order.
    pub fn le(&self, v: i64) -> impl Iterator<Item = u32> + '_ {
        self.tree
            .range(..=v)
            .flat_map(|(_, ids)| ids.iter().copied())
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.tree.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_eq_and_range() {
        let idx = ColumnIndex::build(&[5, 3, 5, 1, 9]);
        assert_eq!(idx.eq(5), &[0, 2]);
        assert_eq!(idx.eq(7), &[] as &[u32]);
        let le: Vec<u32> = idx.le(5).collect();
        assert_eq!(le, vec![3, 1, 0, 2]); // value order: 1, 3, 5
        assert_eq!(idx.distinct_keys(), 4);
    }
}
