//! Append-only intent journal for crash-consistent multi-step mutations.
//!
//! Every mutation that takes more than one atomic filesystem step —
//! artifact save (write tmp, rename, sync dir), spill-file creation,
//! heap-file extension — is bracketed by a `begin` record before the
//! first step and a `commit` (or `abort`) record after the last. After a
//! crash, [`Journal::recover`] replays the valid record prefix and
//! resolves every intent left open: work whose on-disk commit point was
//! reached is rolled forward, everything else is discarded, so no torn
//! state is reachable after restart.
//!
//! Records are single text lines, each prefixed with an FNV-1a checksum
//! of the rest of the line. A torn append (process died mid-`write`)
//! therefore fails its checksum and the scan stops there: the torn tail
//! is exactly the work that was never promised durable.
//!
//! Durability is explicit: [`Journal::append`]-style methods buffer
//! through the OS, and only [`Journal::barrier`] fsyncs. Call sites put
//! the barrier where the durability promise is made (an artifact save
//! barriers at commit; spill bookkeeping, whose files are scratch, may
//! never barrier at all) — that keeps the journal's cost out of the hot
//! path, which the out-of-core bench gates at ≤5% overhead.

use crate::StorageError;
use rqp_faults::crash;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// File name of the journal inside its directory.
pub const JOURNAL_FILE: &str = "rqp-journal.log";

/// What kind of multi-step mutation an intent brackets. The kind decides
/// the rollback rule: artifact saves roll back by removing the temp
/// file (the destination, if present, is the previous complete version);
/// spill and heap files are created fresh, so rollback removes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntentKind {
    /// Atomic artifact save: write `<target>.tmp`, fsync, rename over
    /// `<target>`, fsync the directory.
    ArtifactSave,
    /// A spill file being written through the buffer pool.
    SpillCreate,
    /// A heap file being bulk-loaded or extended.
    HeapExtend,
}

impl IntentKind {
    fn name(self) -> &'static str {
        match self {
            IntentKind::ArtifactSave => "artifact_save",
            IntentKind::SpillCreate => "spill_create",
            IntentKind::HeapExtend => "heap_extend",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "artifact_save" => Some(IntentKind::ArtifactSave),
            "spill_create" => Some(IntentKind::SpillCreate),
            "heap_extend" => Some(IntentKind::HeapExtend),
            _ => None,
        }
    }
}

/// Token for an open intent; consumed by [`Journal::commit`] /
/// [`Journal::abort`]. Dropping it without either leaves the intent
/// open, which recovery treats as a crash (and rolls back).
#[derive(Debug)]
#[must_use = "an intent left open is rolled back by recovery"]
pub struct Intent {
    id: u64,
    kind: IntentKind,
}

impl Intent {
    /// The intent's journal-assigned id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// What kind of mutation this intent brackets.
    pub fn kind(&self) -> IntentKind {
        self.kind
    }
}

/// FNV-1a 64-bit, the same construction the page format uses.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

#[derive(Debug, PartialEq, Eq)]
enum Record {
    Begin {
        id: u64,
        kind: IntentKind,
        target: PathBuf,
    },
    Commit {
        id: u64,
        epoch: u64,
    },
    Abort {
        id: u64,
    },
}

impl Record {
    /// `<op> <id> <kind|-> <epoch> <target-hex|->` — fixed field count;
    /// the checksum is prepended by the writer.
    fn body(&self) -> String {
        match self {
            Record::Begin { id, kind, target } => {
                let hex = hex_encode(target.to_string_lossy().as_bytes());
                format!("begin {id:016x} {} 0 {hex}", kind.name())
            }
            Record::Commit { id, epoch } => format!("commit {id:016x} - {epoch:x} -"),
            Record::Abort { id } => format!("abort {id:016x} - 0 -"),
        }
    }

    fn parse_body(body: &str) -> Option<Record> {
        let fields: Vec<&str> = body.split(' ').collect();
        if fields.len() != 5 {
            return None;
        }
        let id = u64::from_str_radix(fields[1], 16).ok()?;
        match fields[0] {
            "begin" => {
                let kind = IntentKind::parse(fields[2])?;
                let raw = hex_decode(fields[4])?;
                let target = PathBuf::from(String::from_utf8(raw).ok()?);
                Some(Record::Begin { id, kind, target })
            }
            "commit" => {
                let epoch = u64::from_str_radix(fields[3], 16).ok()?;
                Some(Record::Commit { id, epoch })
            }
            "abort" => Some(Record::Abort { id }),
            _ => None,
        }
    }
}

/// The journal: an append-only record log in one directory.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    next_id: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal in `dir`. Existing valid
    /// records are scanned only to continue the id sequence; resolving
    /// them is [`Journal::recover`]'s job.
    pub fn open(dir: &Path) -> Result<Self, StorageError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let (records, _discarded) = read_records(&path)?;
        let next_id = records
            .iter()
            .map(|r| match r {
                Record::Begin { id, .. } | Record::Commit { id, .. } | Record::Abort { id } => {
                    id + 1
                }
            })
            .max()
            .unwrap_or(1);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            file,
            next_id,
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&mut self, record: &Record) -> Result<(), StorageError> {
        let body = record.body();
        let line = format!("{:016x} {body}\n", fnv1a64(body.as_bytes()));
        self.file.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Explicit fsync barrier: everything appended so far is durable
    /// when this returns.
    pub fn barrier(&mut self) -> Result<(), StorageError> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Opens an intent bracketing a mutation of `target`. Buffered; use
    /// [`Journal::begin_durable`] when rollback correctness depends on
    /// the intent record surviving the crash.
    pub fn begin(&mut self, kind: IntentKind, target: &Path) -> Result<Intent, StorageError> {
        let id = self.next_id;
        self.next_id += 1;
        self.append(&Record::Begin {
            id,
            kind,
            target: target.to_path_buf(),
        })?;
        Ok(Intent { id, kind })
    }

    /// As [`Journal::begin`], with a barrier so the intent is durable
    /// before the guarded mutation starts.
    pub fn begin_durable(
        &mut self,
        kind: IntentKind,
        target: &Path,
    ) -> Result<Intent, StorageError> {
        let intent = self.begin(kind, target)?;
        self.barrier()?;
        crash::hit(crash::AFTER_JOURNAL_APPEND);
        Ok(intent)
    }

    /// Closes an intent whose mutation completed. `flush_epoch` records
    /// which buffer-pool flush barrier the commit sits behind (0 when no
    /// pool pages were involved) — a commit must never be appended while
    /// dirty pages it depends on are unflushed.
    pub fn commit(&mut self, intent: Intent, flush_epoch: u64) -> Result<(), StorageError> {
        self.append(&Record::Commit {
            id: intent.id,
            epoch: flush_epoch,
        })
    }

    /// As [`Journal::commit`], then a barrier: the durability point.
    pub fn commit_durable(&mut self, intent: Intent, flush_epoch: u64) -> Result<(), StorageError> {
        self.append(&Record::Commit {
            id: intent.id,
            epoch: flush_epoch,
        })?;
        crash::hit(crash::BEFORE_COMMIT_SYNC);
        self.barrier()
    }

    /// Closes an intent whose mutation was abandoned; the caller has
    /// already undone its partial work.
    pub fn abort(&mut self, intent: Intent) -> Result<(), StorageError> {
        self.append(&Record::Abort { id: intent.id })
    }

    /// Replays the journal in `dir` and resolves every open intent.
    /// Missing journal file means nothing to do. The journal is
    /// truncated (durably) once every intent is resolved.
    pub fn recover(dir: &Path) -> Result<JournalRecovery, StorageError> {
        let path = dir.join(JOURNAL_FILE);
        let mut report = JournalRecovery::default();
        if !path.exists() {
            return Ok(report);
        }
        let (records, discarded) = read_records(&path)?;
        report.discarded = discarded;
        // id → (kind, target); removed once committed or aborted.
        let mut open: Vec<(u64, IntentKind, PathBuf)> = Vec::new();
        for rec in records {
            match rec {
                Record::Begin { id, kind, target } => open.push((id, kind, target)),
                Record::Commit { id, .. } => {
                    open.retain(|(oid, _, _)| *oid != id);
                    report.replayed += 1;
                }
                Record::Abort { id } => {
                    open.retain(|(oid, _, _)| *oid != id);
                    report.replayed += 1;
                }
            }
        }
        for (_, kind, target) in open {
            let target = if target.is_absolute() {
                target
            } else {
                dir.join(target)
            };
            match kind {
                IntentKind::ArtifactSave => {
                    // The rename is the on-disk commit point: a complete
                    // destination rolls forward, only the in-progress
                    // temp is discarded (the destination, when the temp
                    // is still there, is the previous intact version).
                    let tmp = target.with_extension("tmp");
                    if tmp.exists() {
                        std::fs::remove_file(&tmp)?;
                        report.removed.push(tmp);
                        report.rolled_back += 1;
                    } else if target.exists() {
                        report.replayed += 1;
                    } else {
                        report.rolled_back += 1;
                    }
                }
                IntentKind::SpillCreate | IntentKind::HeapExtend => {
                    if target.exists() {
                        std::fs::remove_file(&target)?;
                        report.removed.push(target);
                    }
                    report.rolled_back += 1;
                }
            }
        }
        // Every intent is resolved: truncate so the next run starts
        // clean, and make the truncation itself durable.
        let f = File::create(&path)?;
        f.sync_all()?;
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(report)
    }
}

/// What [`Journal::recover`] did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JournalRecovery {
    /// Records/intents confirmed complete (committed, aborted, or
    /// rolled forward past their on-disk commit point).
    pub replayed: u64,
    /// Open intents whose partial work was discarded.
    pub rolled_back: u64,
    /// Torn or corrupt trailing lines dropped from the journal.
    pub discarded: u64,
    /// Files deleted while rolling back.
    pub removed: Vec<PathBuf>,
}

/// Reads the valid record prefix; returns `(records, torn_tail_lines)`.
/// The scan stops at the first line that is malformed or fails its
/// checksum — everything after a torn append is untrustworthy.
fn read_records(path: &Path) -> Result<(Vec<Record>, u64), StorageError> {
    if !path.exists() {
        return Ok((Vec::new(), 0));
    }
    let reader = BufReader::new(File::open(path)?);
    let mut records = Vec::new();
    let mut total = 0u64;
    let mut valid = 0u64;
    for line in reader.lines() {
        let line = line?;
        total += 1;
        let Some(rec) = parse_line(&line) else { break };
        records.push(rec);
        valid += 1;
    }
    Ok((records, total - valid))
}

fn parse_line(line: &str) -> Option<Record> {
    let (sum, body) = line.split_once(' ')?;
    let want = u64::from_str_radix(sum, 16).ok()?;
    if fnv1a64(body.as_bytes()) != want {
        return None;
    }
    Record::parse_body(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rqp-journal-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn committed_intents_replay_clean() {
        let dir = scratch_dir();
        let target = dir.join("a.rqpa");
        let mut j = Journal::open(&dir).unwrap();
        let intent = j.begin_durable(IntentKind::ArtifactSave, &target).unwrap();
        std::fs::write(&target, b"payload").unwrap();
        j.commit_durable(intent, 0).unwrap();
        drop(j);
        let rep = Journal::recover(&dir).unwrap();
        assert_eq!(rep.rolled_back, 0);
        assert_eq!(rep.replayed, 1);
        assert!(target.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_intent_rolls_back_partial_spill() {
        let dir = scratch_dir();
        let spill = dir.join("spill-0.rqp");
        let mut j = Journal::open(&dir).unwrap();
        let intent = j.begin_durable(IntentKind::SpillCreate, &spill).unwrap();
        std::fs::write(&spill, b"half a page").unwrap();
        j.barrier().unwrap();
        // Crash: the intent token is dropped without commit.
        drop(intent);
        drop(j);
        let rep = Journal::recover(&dir).unwrap();
        assert_eq!(rep.rolled_back, 1);
        assert!(!spill.exists(), "partial spill removed");
        assert_eq!(rep.removed, vec![spill]);
        // Recovery truncated the journal: a second pass is a no-op.
        let rep2 = Journal::recover(&dir).unwrap();
        assert_eq!(rep2, JournalRecovery::default());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn artifact_save_rolls_forward_past_the_rename() {
        let dir = scratch_dir();
        let target = dir.join("b.rqpa");
        let mut j = Journal::open(&dir).unwrap();
        let intent = j.begin_durable(IntentKind::ArtifactSave, &target).unwrap();
        // Simulate: tmp written, renamed into place, then crash before
        // the commit record. The destination is complete.
        std::fs::write(&target, b"complete payload").unwrap();
        j.barrier().unwrap();
        drop(intent);
        drop(j);
        let rep = Journal::recover(&dir).unwrap();
        assert_eq!(rep.rolled_back, 0);
        assert_eq!(rep.replayed, 1, "rename reached: rolled forward");
        assert!(target.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn artifact_save_rollback_keeps_previous_version() {
        let dir = scratch_dir();
        let target = dir.join("c.rqpa");
        std::fs::write(&target, b"old intact version").unwrap();
        let mut j = Journal::open(&dir).unwrap();
        let intent = j.begin_durable(IntentKind::ArtifactSave, &target).unwrap();
        std::fs::write(target.with_extension("tmp"), b"partial new").unwrap();
        j.barrier().unwrap();
        drop(intent);
        drop(j);
        let rep = Journal::recover(&dir).unwrap();
        assert_eq!(rep.rolled_back, 1);
        assert!(!target.with_extension("tmp").exists(), "temp discarded");
        assert_eq!(
            std::fs::read(&target).unwrap(),
            b"old intact version",
            "previous version untouched"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = scratch_dir();
        let mut j = Journal::open(&dir).unwrap();
        let intent = j
            .begin_durable(IntentKind::SpillCreate, &dir.join("s.rqp"))
            .unwrap();
        j.commit_durable(intent, 3).unwrap();
        let path = j.path().to_path_buf();
        drop(j);
        // Simulate a torn append: half a record at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"deadbeef begin 00000").unwrap();
        drop(f);
        let rep = Journal::recover(&dir).unwrap();
        assert_eq!(rep.discarded, 1);
        assert_eq!(rep.replayed, 1);
        assert_eq!(rep.rolled_back, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn id_sequence_continues_across_reopen() {
        let dir = scratch_dir();
        let mut j = Journal::open(&dir).unwrap();
        let a = j.begin(IntentKind::SpillCreate, &dir.join("x")).unwrap();
        let first = a.id();
        j.commit(a, 0).unwrap();
        j.barrier().unwrap();
        drop(j);
        let mut j2 = Journal::open(&dir).unwrap();
        let b = j2.begin(IntentKind::SpillCreate, &dir.join("y")).unwrap();
        assert!(b.id() > first, "ids monotone across reopen");
        j2.commit(b, 0).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
