//! # rqp-storage
//!
//! Out-of-core storage for the robust-query-processing engine: a
//! deterministic slotted-page format ([`PageBuf`]), a pinning buffer
//! pool with clock eviction ([`BufferPool`]), heap-file tables behind
//! the backend-neutral [`TableStore`] trait ([`PagedStore`]), and the
//! shared secondary index ([`ColumnIndex`]).
//!
//! The point of this layer is experimental: the paper's MSO guarantees
//! are claims about *plan* robustness, and they only separate from
//! native optimization once execution is exposed to real memory
//! pressure. A bounded frame budget (`RQP_POOL_FRAMES` /
//! `--pool-frames`) makes "native plans thrash, bounded plans don't"
//! a measurable statement: eviction counters and wall-clock come from
//! the same [`rqp_obs::MetricsRegistry`] the rest of the stack reports
//! into.

mod config;
mod heap;
mod index;
mod journal;
mod page;
mod pool;
mod view;

pub use config::{
    StorageConfig, DEFAULT_PAGE_SIZE, DEFAULT_POOL_FRAMES, ENV_JOURNAL, ENV_PAGE_SIZE,
    ENV_POOL_FRAMES,
};
pub use heap::{PagedStore, PooledSpillWriter};
pub use index::ColumnIndex;
pub use journal::{Intent, IntentKind, Journal, JournalRecovery, JOURNAL_FILE};
pub use page::{PageBuf, PAGE_HEADER_LEN};
pub use pool::{BufferPool, FileId, PageRef, PoolMetrics, FAULT_RETRIES};
pub use view::{PagedTableRef, RowCursor, SpillSink, TableRef, TableStore};

/// Typed storage failures. `Injected` carries the fault-site name so
/// chaos tooling can distinguish injected faults from real corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(String),
    /// A page's stored checksum does not match its contents.
    ChecksumMismatch {
        /// Heap-file (table) name.
        file: String,
        /// Page number within the file.
        page: u64,
    },
    /// Structural page damage other than a checksum mismatch.
    Corrupt(String),
    /// Every frame is pinned; no victim exists.
    PoolExhausted {
        /// The pool's frame budget.
        frames: usize,
    },
    /// A persistent injected fault (site name) exhausted its retries.
    Injected(&'static str),
    /// Invalid configuration (page size / frame budget / env knobs).
    Config(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(msg) => write!(f, "storage I/O error: {msg}"),
            StorageError::ChecksumMismatch { file, page } => {
                write!(f, "checksum mismatch on {file} page {page}")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt page: {msg}"),
            StorageError::PoolExhausted { frames } => {
                write!(f, "buffer pool exhausted: all {frames} frames pinned")
            }
            StorageError::Injected(site) => write!(f, "injected storage fault at {site}"),
            StorageError::Config(msg) => write!(f, "storage config error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}
