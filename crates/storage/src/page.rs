//! Deterministic slotted-page format.
//!
//! A page is a fixed-size byte buffer with a checksummed header, a slot
//! directory growing backward from the end, and fixed-width tuple data
//! growing forward after the header:
//!
//! ```text
//! +--------+----------------------------+ ... +----------------+
//! | header |  tuple 0 | tuple 1 | ...   | free | slotN..slot0  |
//! +--------+----------------------------+ ... +----------------+
//!   32 B      ncols × 8 B each                   2 B each
//! ```
//!
//! Every field is little-endian and every byte of the layout is a pure
//! function of the inserted tuples, so two materializations of the same
//! data are byte-identical and runs over them are byte-replayable. The
//! header checksum (FNV-1a over the page with the checksum field zeroed)
//! turns torn writes and bit rot into typed [`StorageError`]s instead of
//! silent wrong answers.

use crate::StorageError;

/// Bytes reserved for the page header.
pub const PAGE_HEADER_LEN: usize = 32;
/// `"RQPG"` in little-endian.
const MAGIC: u32 = 0x4750_5152;
/// On-disk format version.
const VERSION: u16 = 1;

// Header byte offsets.
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 4;
const OFF_NCOLS: usize = 6;
const OFF_NTUPLES: usize = 8;
const OFF_PAGE_NO: usize = 12;
const OFF_CHECKSUM: usize = 28;

/// FNV-1a over `bytes` (32-bit).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn read_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([b[off], b[off + 1]])
}

fn read_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

fn read_u64(b: &[u8], off: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(a)
}

/// An owned page buffer: the unit the buffer pool caches and the heap
/// file stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageBuf {
    data: Vec<u8>,
    ncols: usize,
}

impl PageBuf {
    /// Tuples a page of `page_size` bytes holds at `ncols` 8-byte
    /// columns each (slot entries are 2 bytes).
    pub fn capacity(page_size: usize, ncols: usize) -> usize {
        (page_size - PAGE_HEADER_LEN) / (ncols * 8 + 2)
    }

    /// A fresh empty page.
    pub fn new(page_size: usize, ncols: usize, page_no: u64) -> Self {
        assert!(page_size > PAGE_HEADER_LEN, "page too small for a header");
        assert!(ncols > 0 && ncols <= u16::MAX as usize, "bad column count");
        assert!(
            Self::capacity(page_size, ncols) > 0,
            "page of {page_size} B cannot hold a {ncols}-column tuple"
        );
        let mut data = vec![0u8; page_size];
        data[OFF_MAGIC..OFF_MAGIC + 4].copy_from_slice(&MAGIC.to_le_bytes());
        data[OFF_VERSION..OFF_VERSION + 2].copy_from_slice(&VERSION.to_le_bytes());
        data[OFF_NCOLS..OFF_NCOLS + 2].copy_from_slice(&(ncols as u16).to_le_bytes());
        data[OFF_PAGE_NO..OFF_PAGE_NO + 8].copy_from_slice(&page_no.to_le_bytes());
        Self { data, ncols }
    }

    /// The page's raw bytes (seal first if they leave memory).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Columns per tuple.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Tuples currently stored.
    pub fn ntuples(&self) -> usize {
        read_u32(&self.data, OFF_NTUPLES) as usize
    }

    /// This page's number within its file.
    pub fn page_no(&self) -> u64 {
        read_u64(&self.data, OFF_PAGE_NO)
    }

    /// Appends a tuple; `false` when the page is full.
    pub fn push(&mut self, row: &[i64]) -> bool {
        assert_eq!(row.len(), self.ncols, "tuple width mismatch");
        let n = self.ntuples();
        if n >= Self::capacity(self.data.len(), self.ncols) {
            return false;
        }
        let off = PAGE_HEADER_LEN + n * self.ncols * 8;
        for (i, v) in row.iter().enumerate() {
            self.data[off + i * 8..off + (i + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
        let slot_off = self.data.len() - 2 * (n + 1);
        self.data[slot_off..slot_off + 2].copy_from_slice(&(off as u16).to_le_bytes());
        let nt = (n + 1) as u32;
        self.data[OFF_NTUPLES..OFF_NTUPLES + 4].copy_from_slice(&nt.to_le_bytes());
        true
    }

    #[inline]
    fn tuple_off(&self, slot: usize) -> usize {
        debug_assert!(slot < self.ntuples(), "slot {slot} out of range");
        let so = self.data.len() - 2 * (slot + 1);
        read_u16(&self.data, so) as usize
    }

    /// One column of one tuple.
    #[inline]
    pub fn value(&self, slot: usize, col: usize) -> i64 {
        let off = self.tuple_off(slot) + col * 8;
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.data[off..off + 8]);
        i64::from_le_bytes(a)
    }

    /// Appends all of tuple `slot`'s values onto `out`.
    pub fn read_row(&self, slot: usize, out: &mut Vec<i64>) {
        let off = self.tuple_off(slot);
        out.reserve(self.ncols);
        for c in 0..self.ncols {
            let mut a = [0u8; 8];
            a.copy_from_slice(&self.data[off + c * 8..off + (c + 1) * 8]);
            out.push(i64::from_le_bytes(a));
        }
    }

    /// Computes and stores the header checksum. Idempotent; call before
    /// the bytes leave memory.
    pub fn seal(&mut self) {
        self.data[OFF_CHECKSUM..OFF_CHECKSUM + 4].copy_from_slice(&[0; 4]);
        let sum = fnv1a(&self.data);
        self.data[OFF_CHECKSUM..OFF_CHECKSUM + 4].copy_from_slice(&sum.to_le_bytes());
    }

    /// Validates raw bytes read back from a file: magic, version, column
    /// count, checksum and slot sanity.
    pub fn from_bytes(data: Vec<u8>, file: &str, page_no: u64) -> Result<Self, StorageError> {
        if data.len() <= PAGE_HEADER_LEN {
            return Err(StorageError::Corrupt(format!(
                "{file} page {page_no}: short page ({} B)",
                data.len()
            )));
        }
        if read_u32(&data, OFF_MAGIC) != MAGIC || read_u16(&data, OFF_VERSION) != VERSION {
            return Err(StorageError::Corrupt(format!(
                "{file} page {page_no}: bad magic/version"
            )));
        }
        let stored = read_u32(&data, OFF_CHECKSUM);
        let mut probe = data.clone();
        probe[OFF_CHECKSUM..OFF_CHECKSUM + 4].copy_from_slice(&[0; 4]);
        if fnv1a(&probe) != stored {
            return Err(StorageError::ChecksumMismatch {
                file: file.to_string(),
                page: page_no,
            });
        }
        if read_u64(&data, OFF_PAGE_NO) != page_no {
            return Err(StorageError::Corrupt(format!(
                "{file} page {page_no}: header claims page {}",
                read_u64(&data, OFF_PAGE_NO)
            )));
        }
        let ncols = read_u16(&data, OFF_NCOLS) as usize;
        let nt = read_u32(&data, OFF_NTUPLES) as usize;
        if ncols == 0 || nt > Self::capacity(data.len(), ncols) {
            return Err(StorageError::Corrupt(format!(
                "{file} page {page_no}: {nt} tuples of {ncols} columns exceed page capacity"
            )));
        }
        Ok(Self { data, ncols })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_capacity() {
        let cap = PageBuf::capacity(8192, 3);
        let mut p = PageBuf::new(8192, 3, 7);
        let mut rows = Vec::new();
        let mut i = 0i64;
        while p.push(&[i, -i, i * 3]) {
            rows.push(vec![i, -i, i * 3]);
            i += 1;
        }
        assert_eq!(p.ntuples(), cap, "fills to exactly the stated capacity");
        p.seal();
        let back = PageBuf::from_bytes(p.bytes().to_vec(), "t", 7).unwrap();
        assert_eq!(back.ntuples(), rows.len());
        for (s, row) in rows.iter().enumerate() {
            let mut out = Vec::new();
            back.read_row(s, &mut out);
            assert_eq!(&out, row);
            assert_eq!(back.value(s, 1), row[1]);
        }
    }

    #[test]
    fn layout_is_deterministic() {
        let build = || {
            let mut p = PageBuf::new(1024, 2, 3);
            for i in 0..10 {
                p.push(&[i, i * i]);
            }
            p.seal();
            p.bytes().to_vec()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let mut p = PageBuf::new(512, 2, 0);
        for i in 0..5 {
            p.push(&[i, 100 + i]);
        }
        p.seal();
        let good = p.bytes().to_vec();
        assert!(PageBuf::from_bytes(good.clone(), "t", 0).is_ok());
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x40;
            assert!(
                PageBuf::from_bytes(bad, "t", 0).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn wrong_page_number_is_typed_corruption() {
        let mut p = PageBuf::new(512, 1, 4);
        p.push(&[1]);
        p.seal();
        let err = PageBuf::from_bytes(p.bytes().to_vec(), "t", 5).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err:?}");
    }
}
