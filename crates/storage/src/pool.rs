//! Pinning buffer pool with clock eviction.
//!
//! A fixed budget of frames caches [`PageBuf`]s read from registered
//! heap files. Pins protect a frame from eviction; the clock hand skips
//! pinned frames and second-chances referenced ones. Dirty frames
//! (spill pages written through the pool) are flushed back to their
//! file before the frame is reused.
//!
//! Every interesting transition is metered through the shared
//! [`MetricsRegistry`]: hits, misses, evictions, flushes, pin traffic,
//! and the page-level fault sites. Transient injected faults are
//! absorbed by a bounded retry (so a seeded chaos run replays
//! bit-identically); persistent ones surface as typed
//! [`StorageError::Injected`] errors.
//!
//! Concurrency model: one `Mutex` guards the page table, file registry
//! and clock hand, and is held across page I/O. That is deliberately
//! simple — the executor is single-threaded per query, and correctness
//! of the pin/evict protocol matters more here than I/O overlap.

use crate::page::PageBuf;
use crate::{StorageConfig, StorageError};
use rqp_faults::{crash, FaultPlan, FaultSite};
use rqp_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Handle to a file registered with a pool.
pub type FileId = usize;

/// Transient injected faults are retried this many times before they
/// are treated as persistent and surfaced as typed errors.
pub const FAULT_RETRIES: u32 = 3;

/// Handles into the metrics registry, resolved once at pool creation so
/// the hot path never touches the registry lock.
#[derive(Clone)]
pub struct PoolMetrics {
    pub hits: Counter,
    pub misses: Counter,
    pub evictions: Counter,
    pub flushes: Counter,
    pub pins: Counter,
    pub spill_pages: Counter,
    pub fault_torn: Counter,
    pub fault_pin: Counter,
    pub fault_checksum: Counter,
    pub retries: Counter,
    pub pinned: Gauge,
    pub frames: Gauge,
    pub io_us: Histogram,
}

impl PoolMetrics {
    fn register(reg: &MetricsRegistry) -> Self {
        Self {
            hits: reg.counter("storage.pool.hits"),
            misses: reg.counter("storage.pool.misses"),
            evictions: reg.counter("storage.pool.evictions"),
            flushes: reg.counter("storage.pool.flushes"),
            pins: reg.counter("storage.pool.pins"),
            spill_pages: reg.counter("storage.spill.pages"),
            fault_torn: reg.counter("storage.faults.torn_write"),
            fault_pin: reg.counter("storage.faults.failed_pin"),
            fault_checksum: reg.counter("storage.faults.checksum"),
            retries: reg.counter("storage.faults.retries"),
            pinned: reg.gauge("storage.pool.pinned"),
            frames: reg.gauge("storage.pool.frames"),
            io_us: reg.histogram("storage.pool.io_us"),
        }
    }
}

struct Frame {
    pins: AtomicU32,
    refbit: AtomicBool,
    dirty: AtomicBool,
    page: RwLock<Option<PageBuf>>,
}

struct FileEntry {
    handle: std::fs::File,
    path: PathBuf,
    name: String,
}

struct PoolInner {
    /// `(file, page)` → frame index for resident pages.
    map: HashMap<(FileId, u64), usize>,
    /// Reverse mapping: which key each frame currently holds.
    keys: Vec<Option<(FileId, u64)>>,
    /// Registered files; `None` marks a released (spill) file.
    files: Vec<Option<FileEntry>>,
    /// Clock hand for the next victim sweep.
    hand: usize,
}

/// The buffer pool. See the module docs for the protocol.
pub struct BufferPool {
    page_size: usize,
    frames: Vec<Arc<Frame>>,
    inner: Mutex<PoolInner>,
    metrics: PoolMetrics,
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Bumped by every completed flush barrier ([`BufferPool::flush_file`]
    /// / [`BufferPool::flush_all`]). A journaled commit that depends on
    /// pool pages records the epoch it observed, so a commit can never
    /// claim durability for pages no barrier has synced.
    flush_epoch: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("page_size", &self.page_size)
            .field("frames", &self.frames.len())
            .finish_non_exhaustive()
    }
}

/// A pinned page. The frame cannot be evicted while this guard lives;
/// dropping it unpins.
pub struct PageRef {
    frame: Arc<Frame>,
    pinned: Gauge,
}

impl std::fmt::Debug for PageRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageRef")
            .field("pins", &self.frame.pins.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl PageRef {
    /// Reads through the pinned page.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&PageBuf) -> R) -> R {
        let guard = self.frame.page.read().unwrap();
        f(guard.as_ref().expect("pinned frame always holds a page"))
    }
}

impl Drop for PageRef {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::SeqCst);
        self.pinned.add(-1.0);
    }
}

impl BufferPool {
    /// A pool with `config.pool_frames` frames of `config.page_size`
    /// bytes, metered through `registry`.
    pub fn new(config: StorageConfig, registry: &MetricsRegistry) -> Result<Self, StorageError> {
        let config = config.validated()?;
        let metrics = PoolMetrics::register(registry);
        metrics.frames.set(config.pool_frames as f64);
        Ok(Self {
            page_size: config.page_size,
            frames: (0..config.pool_frames)
                .map(|_| {
                    Arc::new(Frame {
                        pins: AtomicU32::new(0),
                        refbit: AtomicBool::new(false),
                        dirty: AtomicBool::new(false),
                        page: RwLock::new(None),
                    })
                })
                .collect(),
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                keys: vec![None; config.pool_frames],
                files: Vec::new(),
                hand: 0,
            }),
            metrics,
            faults: RwLock::new(None),
            flush_epoch: AtomicU64::new(0),
        })
    }

    /// Arms (or disarms) page-level fault injection.
    pub fn set_faults(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.write().unwrap() = plan;
    }

    /// Bytes per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Frame budget.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// The pool's metric handles (for reporting).
    pub fn metrics(&self) -> &PoolMetrics {
        &self.metrics
    }

    /// Registers a heap file for paging. The pool keeps the handle open
    /// until [`BufferPool::release_file`].
    pub fn register_file(&self, path: &Path, name: &str) -> Result<FileId, StorageError> {
        let handle = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut inner = self.inner.lock().unwrap();
        inner.files.push(Some(FileEntry {
            handle,
            path: path.to_path_buf(),
            name: name.to_string(),
        }));
        Ok(inner.files.len() - 1)
    }

    /// Drops every resident page of `file` without flushing, closes the
    /// handle and deletes the file. Used for discarded spill output; the
    /// caller must not hold pins into the file.
    pub fn release_file(&self, file: FileId) {
        let mut inner = self.inner.lock().unwrap();
        for fi in 0..self.frames.len() {
            if inner.keys[fi].is_some_and(|k| k.0 == file) {
                let key = inner.keys[fi].take().expect("checked above");
                inner.map.remove(&key);
                let frame = &self.frames[fi];
                debug_assert_eq!(
                    frame.pins.load(Ordering::SeqCst),
                    0,
                    "released while pinned"
                );
                *frame.page.write().unwrap() = None;
                frame.dirty.store(false, Ordering::Relaxed);
                frame.refbit.store(false, Ordering::Relaxed);
            }
        }
        if let Some(entry) = inner.files.get_mut(file).and_then(Option::take) {
            drop(entry.handle);
            let _ = std::fs::remove_file(&entry.path);
        }
    }

    /// Pins `(file, page_no)`, faulting it in from the file on a miss.
    pub fn pin(&self, file: FileId, page_no: u64) -> Result<PageRef, StorageError> {
        self.metrics.pins.inc();
        self.check_pin_fault()?;
        let mut inner = self.inner.lock().unwrap();
        if let Some(&fi) = inner.map.get(&(file, page_no)) {
            let frame = &self.frames[fi];
            frame.pins.fetch_add(1, Ordering::SeqCst);
            frame.refbit.store(true, Ordering::Relaxed);
            self.metrics.hits.inc();
            self.metrics.pinned.add(1.0);
            return Ok(PageRef {
                frame: frame.clone(),
                pinned: self.metrics.pinned.clone(),
            });
        }
        self.metrics.misses.inc();
        let fi = self.claim_victim(&mut inner)?;
        let page = self.read_page(&mut inner, file, page_no)?;
        let frame = &self.frames[fi];
        *frame.page.write().unwrap() = Some(page);
        frame.dirty.store(false, Ordering::Relaxed);
        frame.refbit.store(true, Ordering::Relaxed);
        frame.pins.store(1, Ordering::SeqCst);
        inner.map.insert((file, page_no), fi);
        inner.keys[fi] = Some((file, page_no));
        self.metrics.pinned.add(1.0);
        Ok(PageRef {
            frame: frame.clone(),
            pinned: self.metrics.pinned.clone(),
        })
    }

    /// Installs a freshly written (spill) page as a dirty, unpinned,
    /// immediately-evictable resident. It still costs a frame, which is
    /// how spilling competes with scans for the pool budget.
    pub fn write_through(
        &self,
        file: FileId,
        page_no: u64,
        mut page: PageBuf,
    ) -> Result<(), StorageError> {
        page.seal();
        let mut inner = self.inner.lock().unwrap();
        let fi = self.claim_victim(&mut inner)?;
        let frame = &self.frames[fi];
        *frame.page.write().unwrap() = Some(page);
        frame.dirty.store(true, Ordering::Relaxed);
        frame.refbit.store(false, Ordering::Relaxed);
        inner.map.insert((file, page_no), fi);
        inner.keys[fi] = Some((file, page_no));
        self.metrics.spill_pages.inc();
        Ok(())
    }

    /// Flush barrier for one file: writes back every dirty resident
    /// page of `file`, fsyncs its handle, and bumps the flush epoch.
    ///
    /// This is where deferred write-through I/O errors surface *to the
    /// writer that caused them*: without a barrier, a torn spill write
    /// is only discovered when eviction pressure flushes the frame —
    /// inside some unrelated caller's `pin`. Returns the new epoch.
    pub fn flush_file(&self, file: FileId) -> Result<u64, StorageError> {
        let mut inner = self.inner.lock().unwrap();
        self.flush_locked(&mut inner, Some(file))?;
        Ok(self.flush_epoch.fetch_add(1, Ordering::SeqCst) + 1)
    }

    /// Flush barrier across every registered file. Returns the new
    /// epoch; a journaled commit written after this call may safely
    /// record it.
    pub fn flush_all(&self) -> Result<u64, StorageError> {
        let mut inner = self.inner.lock().unwrap();
        self.flush_locked(&mut inner, None)?;
        Ok(self.flush_epoch.fetch_add(1, Ordering::SeqCst) + 1)
    }

    /// Number of completed flush barriers.
    pub fn flush_epoch(&self) -> u64 {
        self.flush_epoch.load(Ordering::SeqCst)
    }

    fn flush_locked(
        &self,
        inner: &mut PoolInner,
        only: Option<FileId>,
    ) -> Result<(), StorageError> {
        let mut touched: Vec<FileId> = Vec::new();
        for fi in 0..self.frames.len() {
            let Some(key) = inner.keys[fi] else { continue };
            if only.is_some_and(|f| f != key.0) {
                continue;
            }
            let frame = &self.frames[fi];
            if !frame.dirty.load(Ordering::Relaxed) {
                continue;
            }
            let guard = frame.page.read().unwrap();
            let Some(page) = guard.as_ref() else { continue };
            self.write_page(inner, key.0, key.1, page)?;
            drop(guard);
            frame.dirty.store(false, Ordering::Relaxed);
            self.metrics.flushes.inc();
            if !touched.contains(&key.0) {
                touched.push(key.0);
            }
            // Pages written, durability barrier not yet reached.
            crash::hit(crash::MID_PAGE_FLUSH);
        }
        for f in touched {
            if let Some(entry) = inner.files.get_mut(f).and_then(Option::as_mut) {
                entry.handle.sync_all()?;
            }
        }
        Ok(())
    }

    /// Clock sweep for a reusable frame; flushes a dirty victim. Errors
    /// with [`StorageError::PoolExhausted`] when every frame is pinned.
    fn claim_victim(&self, inner: &mut PoolInner) -> Result<usize, StorageError> {
        let n = self.frames.len();
        // Two full revolutions: the first clears reference bits, the
        // second must find an unpinned frame if one exists.
        for _ in 0..(2 * n + 1) {
            let fi = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let frame = &self.frames[fi];
            if frame.pins.load(Ordering::SeqCst) > 0 {
                continue;
            }
            if frame.refbit.swap(false, Ordering::Relaxed) {
                continue;
            }
            if let Some(key) = inner.keys[fi].take() {
                inner.map.remove(&key);
                let old = frame.page.write().unwrap().take();
                if let Some(old) = old {
                    self.metrics.evictions.inc();
                    if frame.dirty.swap(false, Ordering::Relaxed) {
                        self.metrics.flushes.inc();
                        self.write_page(inner, key.0, key.1, &old)?;
                    }
                }
            }
            return Ok(fi);
        }
        Err(StorageError::PoolExhausted { frames: n })
    }

    fn read_page(
        &self,
        inner: &mut PoolInner,
        file: FileId,
        page_no: u64,
    ) -> Result<PageBuf, StorageError> {
        let t0 = Instant::now();
        let mut attempt = 0u32;
        loop {
            let entry = inner
                .files
                .get_mut(file)
                .and_then(Option::as_mut)
                .ok_or_else(|| StorageError::Io(format!("file id {file} is not registered")))?;
            entry
                .handle
                .seek(SeekFrom::Start(page_no * self.page_size as u64))?;
            let mut buf = vec![0u8; self.page_size];
            entry.handle.read_exact(&mut buf)?;
            if self.shot(FaultSite::PageChecksum) {
                self.metrics.fault_checksum.inc();
                attempt += 1;
                if attempt >= FAULT_RETRIES {
                    return Err(StorageError::Injected(FaultSite::PageChecksum.name()));
                }
                self.metrics.retries.inc();
                continue;
            }
            let page = PageBuf::from_bytes(buf, &entry.name, page_no)?;
            self.metrics.io_us.observe(t0.elapsed().as_micros() as f64);
            return Ok(page);
        }
    }

    fn write_page(
        &self,
        inner: &mut PoolInner,
        file: FileId,
        page_no: u64,
        page: &PageBuf,
    ) -> Result<(), StorageError> {
        let mut attempt = 0u32;
        loop {
            let entry = inner
                .files
                .get_mut(file)
                .and_then(Option::as_mut)
                .ok_or_else(|| StorageError::Io(format!("file id {file} is not registered")))?;
            entry
                .handle
                .seek(SeekFrom::Start(page_no * self.page_size as u64))?;
            if self.shot(FaultSite::PageTornWrite) {
                self.metrics.fault_torn.inc();
                // Simulate the tear: only half the page reaches the
                // file before the retry rewrites it in full.
                entry
                    .handle
                    .write_all(&page.bytes()[..self.page_size / 2])?;
                attempt += 1;
                if attempt >= FAULT_RETRIES {
                    return Err(StorageError::Injected(FaultSite::PageTornWrite.name()));
                }
                self.metrics.retries.inc();
                continue;
            }
            entry.handle.write_all(page.bytes())?;
            return Ok(());
        }
    }

    fn shot(&self, site: FaultSite) -> bool {
        self.faults
            .read()
            .unwrap()
            .as_ref()
            .is_some_and(|p| p.shot(site).is_some())
    }

    fn check_pin_fault(&self) -> Result<(), StorageError> {
        let plan = self.faults.read().unwrap().clone();
        let Some(plan) = plan else { return Ok(()) };
        let mut attempt = 0u32;
        while plan.shot(FaultSite::PagePinFailed).is_some() {
            self.metrics.fault_pin.inc();
            attempt += 1;
            if attempt >= FAULT_RETRIES {
                return Err(StorageError::Injected(FaultSite::PagePinFailed.name()));
            }
            self.metrics.retries.inc();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_file(pages: u64, page_size: usize, ncols: usize) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "rqp-pool-test-{}-{}.rqp",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = std::fs::File::create(&path).unwrap();
        for p in 0..pages {
            let mut page = PageBuf::new(page_size, ncols, p);
            let mut s = 0i64;
            while page.push(&[p as i64, s]) {
                s += 1;
            }
            page.seal();
            f.write_all(page.bytes()).unwrap();
        }
        path
    }

    fn pool(frames: usize) -> (BufferPool, MetricsRegistry) {
        let reg = MetricsRegistry::new();
        let cfg = StorageConfig::default()
            .with_page_size(512)
            .with_pool_frames(frames);
        (BufferPool::new(cfg, &reg).unwrap(), reg)
    }

    #[test]
    fn hit_miss_and_eviction_accounting() {
        let (pool, _reg) = pool(2);
        let path = scratch_file(3, 512, 2);
        let f = pool.register_file(&path, "t").unwrap();
        for p in 0..3 {
            let pin = pool.pin(f, p).unwrap();
            assert_eq!(pin.with(|pg| pg.value(0, 0)), p as i64);
        }
        assert_eq!(pool.metrics().misses.value(), 3);
        assert_eq!(pool.metrics().evictions.value(), 1, "3 pages into 2 frames");
        let pin = pool.pin(f, 2).unwrap();
        assert_eq!(pool.metrics().hits.value(), 1, "page 2 is still resident");
        drop(pin);
        pool.release_file(f);
        assert!(!path.exists(), "release deletes the file");
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let (pool, _reg) = pool(2);
        let path = scratch_file(4, 512, 2);
        let f = pool.register_file(&path, "t").unwrap();
        let held = pool.pin(f, 0).unwrap();
        // Cycle far more pages than frames through the other frame.
        for p in 1..4 {
            drop(pool.pin(f, p).unwrap());
        }
        let before = pool.metrics().misses.value();
        let again = pool.pin(f, 0).unwrap();
        assert_eq!(
            pool.metrics().misses.value(),
            before,
            "the pinned page survived every eviction sweep"
        );
        assert_eq!(again.with(|pg| pg.value(0, 0)), 0);
        drop(held);
        drop(again);
        assert_eq!(pool.metrics().pinned.value(), 0.0, "all pins returned");
        pool.release_file(f);
    }

    #[test]
    fn fully_pinned_pool_is_a_typed_error() {
        let (pool, _reg) = pool(2);
        let path = scratch_file(3, 512, 2);
        let f = pool.register_file(&path, "t").unwrap();
        let _a = pool.pin(f, 0).unwrap();
        let _b = pool.pin(f, 1).unwrap();
        let err = pool.pin(f, 2).unwrap_err();
        assert!(
            matches!(err, StorageError::PoolExhausted { frames: 2 }),
            "{err:?}"
        );
    }

    #[test]
    fn transient_page_faults_are_absorbed_and_counted() {
        let (pool, _reg) = pool(2);
        let path = scratch_file(2, 512, 2);
        let f = pool.register_file(&path, "t").unwrap();
        let plan = FaultPlan::new(11)
            .with_fail_first(FaultSite::PageChecksum, 1)
            .with_fail_first(FaultSite::PagePinFailed, 1);
        pool.set_faults(Some(Arc::new(plan)));
        let pin = pool.pin(f, 0).unwrap();
        assert_eq!(pin.with(|pg| pg.value(0, 0)), 0);
        assert_eq!(pool.metrics().fault_pin.value(), 1);
        assert_eq!(pool.metrics().fault_checksum.value(), 1);
        assert_eq!(pool.metrics().retries.value(), 2);
        drop(pin);
        pool.release_file(f);
    }

    #[test]
    fn persistent_pin_fault_is_a_typed_injected_error() {
        let (pool, _reg) = pool(2);
        let path = scratch_file(1, 512, 2);
        let f = pool.register_file(&path, "t").unwrap();
        let plan = FaultPlan::new(3).with_site(FaultSite::PagePinFailed, 1.0);
        pool.set_faults(Some(Arc::new(plan)));
        let err = pool.pin(f, 0).unwrap_err();
        assert!(
            matches!(err, StorageError::Injected("page.failed_pin")),
            "{err:?}"
        );
    }

    #[test]
    fn flush_barrier_surfaces_persistent_torn_write_to_the_writer() {
        // Before the flush barrier existed, a persistent torn write on
        // a deferred spill page only surfaced when eviction pressure
        // flushed the frame — as an error inside some unrelated pin().
        // flush_file() must surface it at the spill boundary, typed.
        let (pool, _reg) = pool(2);
        let path = scratch_file(0, 512, 2);
        let f = pool.register_file(&path, "spill").unwrap();
        let mut page = PageBuf::new(512, 2, 0);
        page.push(&[1, 2]);
        pool.write_through(f, 0, page).unwrap();
        pool.set_faults(Some(Arc::new(
            FaultPlan::new(5).with_site(FaultSite::PageTornWrite, 1.0),
        )));
        let err = pool.flush_file(f).unwrap_err();
        assert!(
            matches!(err, StorageError::Injected("page.torn_write")),
            "{err:?}"
        );
        // Once the fault heals, the same barrier succeeds and the page
        // round-trips; the epoch only advances on a completed barrier.
        pool.set_faults(None);
        let before = pool.flush_epoch();
        let epoch = pool.flush_file(f).unwrap();
        assert_eq!(epoch, before + 1);
        let pin = pool.pin(f, 0).unwrap();
        assert_eq!(pin.with(|pg| (pg.value(0, 0), pg.value(0, 1))), (1, 2));
        drop(pin);
        pool.release_file(f);
    }

    #[test]
    fn torn_write_retries_then_round_trips() {
        let (pool, _reg) = pool(2);
        let path = scratch_file(0, 512, 2);
        let f = pool.register_file(&path, "spill").unwrap();
        let plan = FaultPlan::new(5).with_fail_first(FaultSite::PageTornWrite, 1);
        pool.set_faults(Some(Arc::new(plan)));
        let mut page = PageBuf::new(512, 2, 0);
        page.push(&[7, 8]);
        pool.write_through(f, 0, page).unwrap();
        // Force the dirty spill page out: claim both frames for reads
        // of a second file.
        let other = scratch_file(2, 512, 2);
        let g = pool.register_file(&other, "t").unwrap();
        drop(pool.pin(g, 0).unwrap());
        drop(pool.pin(g, 1).unwrap());
        assert_eq!(pool.metrics().fault_torn.value(), 1, "tear fired on flush");
        assert_eq!(pool.metrics().flushes.value(), 1);
        // The retried write must have produced a valid page on disk.
        let pin = pool.pin(f, 0).unwrap();
        assert_eq!(pin.with(|pg| (pg.value(0, 0), pg.value(0, 1))), (7, 8));
        drop(pin);
        pool.release_file(f);
        pool.release_file(g);
    }
}
