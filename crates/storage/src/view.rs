//! Backend-neutral table access: the [`TableStore`] trait and the
//! row-cursor layer the executor scans through.
//!
//! The in-memory backend (`rqp-executor`'s `DataStore`) and the paged
//! backend ([`crate::PagedStore`]) both hand out [`TableRef`]s; the
//! executor never sees which one it is running against, which is what
//! makes the in-memory-vs-paged differential suite meaningful.

use crate::pool::{BufferPool, FileId, PageRef};
use crate::{ColumnIndex, StorageError};
use rqp_catalog::{ColId, DataTable, TableId};

/// A storage backend the executor can run against.
///
/// `Debug` is required so executors over a `&dyn TableStore` stay
/// debuggable.
pub trait TableStore: std::fmt::Debug {
    /// A scannable view of table `t`.
    fn table_ref(&self, t: TableId) -> Option<TableRef<'_>>;

    /// Index over `(table, column)`, if one was built.
    fn index(&self, t: TableId, c: ColId) -> Option<&ColumnIndex>;

    /// Ground-truth join selectivity between two columns (for oracle
    /// measurement, not available to the optimizer).
    fn true_join_selectivity(&self, l: (TableId, ColId), r: (TableId, ColId)) -> Option<f64>;

    /// Ground-truth selectivity of `col <= v`.
    fn true_le_selectivity(&self, t: TableId, c: ColId, v: i64) -> Option<f64>;

    /// A writer for discarded spill-mode output, if this backend spills
    /// through real storage. `None` means spill output is simply dropped.
    fn spill_sink(&self) -> Option<Box<dyn SpillSink + '_>> {
        None
    }
}

/// Destination for rows a budgeted (spill-mode) run produces and
/// discards. Paged backends route this through the buffer pool so
/// spilling competes with scans for frames.
pub trait SpillSink {
    /// Appends one row.
    fn append(&mut self, row: &[i64]) -> Result<(), StorageError>;

    /// Flushes and returns the number of rows written.
    fn finish(&mut self) -> Result<u64, StorageError>;
}

/// A borrowed, scannable view of one table.
#[derive(Debug, Clone, Copy)]
pub enum TableRef<'a> {
    /// Column-major in-memory table.
    Mem(&'a DataTable),
    /// Slotted pages behind a buffer pool.
    Paged(PagedTableRef<'a>),
}

/// Location of a paged table: which file, and its fixed geometry.
#[derive(Debug, Clone, Copy)]
pub struct PagedTableRef<'a> {
    pub(crate) pool: &'a BufferPool,
    pub(crate) file: FileId,
    pub(crate) rows: usize,
    pub(crate) ncols: usize,
    pub(crate) cap: usize,
}

impl<'a> TableRef<'a> {
    /// Rows in the table.
    pub fn rows(&self) -> usize {
        match self {
            TableRef::Mem(t) => t.rows(),
            TableRef::Paged(p) => p.rows,
        }
    }

    /// Columns per row.
    pub fn ncols(&self) -> usize {
        match self {
            TableRef::Mem(t) => t.columns.len(),
            TableRef::Paged(p) => p.ncols,
        }
    }

    /// A cursor for random row access. Paged cursors keep the last
    /// touched page pinned, so sequential scans pin each page once.
    pub fn cursor(&self) -> RowCursor<'a> {
        match *self {
            TableRef::Mem(t) => RowCursor::Mem(t),
            TableRef::Paged(p) => RowCursor::Paged(PagedCursor {
                view: p,
                page: None,
            }),
        }
    }
}

/// Random-access row reader over a [`TableRef`].
pub enum RowCursor<'a> {
    /// Direct column-major access.
    Mem(&'a DataTable),
    /// Pin-per-page access through the buffer pool.
    Paged(PagedCursor<'a>),
}

/// Cursor state for the paged backend: the view plus the currently
/// pinned page, if any.
pub struct PagedCursor<'a> {
    view: PagedTableRef<'a>,
    page: Option<(u64, PageRef)>,
}

impl PagedCursor<'_> {
    /// Pins the page holding `row` (reusing the held pin when it
    /// already covers it) and reads through `f`.
    fn with_page<R>(
        &mut self,
        row: usize,
        f: impl FnOnce(&crate::PageBuf, usize) -> R,
    ) -> Result<R, StorageError> {
        let page_no = (row / self.view.cap) as u64;
        let slot = row % self.view.cap;
        if self.page.as_ref().is_none_or(|(no, _)| *no != page_no) {
            // Drop the old pin before taking the new one so a
            // single-scan cursor never holds two frames.
            self.page = None;
            let pin = self.view.pool.pin(self.view.file, page_no)?;
            self.page = Some((page_no, pin));
        }
        let (_, pin) = self.page.as_ref().expect("pin installed above");
        Ok(pin.with(|p| f(p, slot)))
    }
}

impl PagedCursor<'_> {
    /// Reads rows `[lo, hi)` column-major onto `cols`, pinning each
    /// covered page exactly once and copying all of its slots in one
    /// visit (instead of re-entering the pool per row).
    fn read_range(
        &mut self,
        lo: usize,
        hi: usize,
        cols: &mut [Vec<i64>],
    ) -> Result<(), StorageError> {
        let cap = self.view.cap;
        let mut row = lo;
        while row < hi {
            let page_no = row / cap;
            let run = ((page_no + 1) * cap).min(hi) - row;
            self.with_page(row, |p, slot| {
                for s in slot..slot + run {
                    for (c, dst) in cols.iter_mut().enumerate() {
                        dst.push(p.value(s, c));
                    }
                }
            })?;
            row += run;
        }
        Ok(())
    }
}

impl RowCursor<'_> {
    /// One column of one row.
    #[inline]
    pub fn value(&mut self, row: usize, col: usize) -> Result<i64, StorageError> {
        match self {
            RowCursor::Mem(t) => Ok(t.columns[col][row]),
            RowCursor::Paged(c) => c.with_page(row, |p, slot| p.value(slot, col)),
        }
    }

    /// Appends all of `row`'s values onto `out`.
    pub fn row_into(&mut self, row: usize, out: &mut Vec<i64>) -> Result<(), StorageError> {
        match self {
            RowCursor::Mem(t) => {
                out.reserve(t.columns.len());
                for c in t.columns.iter() {
                    out.push(c[row]);
                }
                Ok(())
            }
            RowCursor::Paged(c) => c.with_page(row, |p, slot| p.read_row(slot, out)),
        }
    }

    /// Appends rows `[lo, hi)` column-major onto `cols` (one destination
    /// `Vec` per column). This is the batch engine's scan read path: the
    /// in-memory backend copies column slices, the paged backend pins
    /// each covered page once and drains it slot-by-slot.
    pub fn read_batch(
        &mut self,
        lo: usize,
        hi: usize,
        cols: &mut [Vec<i64>],
    ) -> Result<(), StorageError> {
        match self {
            RowCursor::Mem(t) => {
                for (c, dst) in cols.iter_mut().enumerate() {
                    dst.extend_from_slice(&t.columns[c][lo..hi]);
                }
                Ok(())
            }
            RowCursor::Paged(c) => c.read_range(lo, hi, cols),
        }
    }
}
