//! A small builder for SPJ query specifications over a catalog.

use rqp_catalog::Catalog;
use rqp_common::Result;
use rqp_optimizer::{PredId, Predicate, PredicateKind, QuerySpec, RelIdx};

/// Builds [`QuerySpec`]s by table/column name, tracking epp designations.
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    relations: Vec<usize>,
    predicates: Vec<Predicate>,
    epps: Vec<PredId>,
}

impl<'a> QueryBuilder<'a> {
    /// Starts a builder over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            relations: Vec::new(),
            predicates: Vec::new(),
            epps: Vec::new(),
        }
    }

    /// Adds a base relation (tables may repeat — self-joins get distinct
    /// query-local indices).
    ///
    /// # Panics
    /// Panics if the table does not exist (workload definitions are
    /// static; a typo is a bug).
    pub fn rel(&mut self, table: &str) -> RelIdx {
        let tid = self
            .catalog
            .table_id(table)
            .unwrap_or_else(|e| panic!("workload table lookup: {e}"));
        self.relations.push(tid);
        self.relations.len() - 1
    }

    fn col(&self, rel: RelIdx, name: &str) -> usize {
        let tid = self.relations[rel];
        self.catalog.table(tid).col_id(name).unwrap_or_else(|| {
            panic!(
                "workload column lookup: {}.{name}",
                self.catalog.table(tid).name
            )
        })
    }

    /// Adds an equi-join; `epp` marks it error-prone (ESS dimensions are
    /// assigned in call order).
    pub fn join(&mut self, l: RelIdx, lcol: &str, r: RelIdx, rcol: &str, epp: bool) -> PredId {
        let kind = PredicateKind::Join {
            left: l,
            left_col: self.col(l, lcol),
            right: r,
            right_col: self.col(r, rcol),
        };
        let label = format!(
            "{}⋈{}",
            self.catalog.table(self.relations[l]).name,
            self.catalog.table(self.relations[r]).name
        );
        self.push(Predicate { label, kind }, epp)
    }

    /// Adds a `col <= v` filter.
    pub fn filter_le(&mut self, rel: RelIdx, col: &str, v: i64, epp: bool) -> PredId {
        let kind = PredicateKind::FilterLe {
            rel,
            col: self.col(rel, col),
            value: v,
        };
        let label = format!("{col}<={v}");
        self.push(Predicate { label, kind }, epp)
    }

    /// Adds a `col = v` filter.
    pub fn filter_eq(&mut self, rel: RelIdx, col: &str, v: i64, epp: bool) -> PredId {
        let kind = PredicateKind::FilterEq {
            rel,
            col: self.col(rel, col),
            value: v,
        };
        let label = format!("{col}={v}");
        self.push(Predicate { label, kind }, epp)
    }

    fn push(&mut self, p: Predicate, epp: bool) -> PredId {
        self.predicates.push(p);
        let id = self.predicates.len() - 1;
        if epp {
            self.epps.push(id);
        }
        id
    }

    /// Finalizes and validates the query.
    pub fn build(self, name: impl Into<String>) -> Result<QuerySpec> {
        let q = QuerySpec {
            name: name.into(),
            relations: self.relations,
            predicates: self.predicates,
            epps: self.epps,
        };
        q.validate(self.catalog)?;
        Ok(q)
    }

    /// The query-local table ids added so far (for dataset recipes).
    pub fn relations(&self) -> &[usize] {
        &self.relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::tpcds;

    #[test]
    fn builds_a_valid_join_query() {
        let cat = tpcds::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat);
        let ss = qb.rel("store_sales");
        let d = qb.rel("date_dim");
        qb.join(ss, "ss_sold_date_sk", d, "d_date_sk", true);
        qb.filter_eq(d, "d_year", 100, false);
        let q = qb.build("test").unwrap();
        assert_eq!(q.ndims(), 1);
        assert_eq!(q.relations.len(), 2);
    }

    #[test]
    #[should_panic(expected = "workload column lookup")]
    fn bad_column_panics() {
        let cat = tpcds::catalog(1.0);
        let mut qb = QueryBuilder::new(&cat);
        let ss = qb.rel("store_sales");
        qb.filter_eq(ss, "nonexistent", 1, false);
    }
}
