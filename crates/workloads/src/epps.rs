//! Error-prone predicate identification (§7).
//!
//! "With regard to identification of the epps that constitute the ESS, we
//! could leverage application domain knowledge and query logs to make this
//! selection, or simply be conservative and assign all uncertain
//! combination of predicates to be epps." This module implements both
//! policies over a [`QuerySpec`]: the conservative all-joins rule, and a
//! statistics-quality heuristic that flags predicates whose estimates rest
//! on shaky ground (missing histograms, AVI join formulas over large
//! domains).

use rqp_catalog::Catalog;
use rqp_optimizer::{PredId, PredicateKind, QuerySpec};

/// Epp-selection policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EppPolicy {
    /// Conservative: every join predicate is error-prone (join estimates
    /// rest on the AVI assumption, the paper's primary error source).
    AllJoins,
    /// Heuristic: joins whose NDV-based estimate falls below the given
    /// threshold (tiny estimates have the most room to be wrong — the
    /// ratio `truth/estimate` can span orders of magnitude), plus filters
    /// lacking histogram support.
    Uncertain {
        /// Joins with estimates below this are flagged (e.g. `1e-3`).
        join_sel_threshold: f64,
    },
}

/// Returns the predicate ids the policy designates error-prone, in
/// predicate order (the ESS dimension order).
pub fn identify_epps(catalog: &Catalog, query: &QuerySpec, policy: EppPolicy) -> Vec<PredId> {
    query
        .predicates
        .iter()
        .enumerate()
        .filter(|(_, p)| match (policy, p.kind) {
            (EppPolicy::AllJoins, kind) => kind.is_join(),
            (
                EppPolicy::Uncertain { join_sel_threshold },
                PredicateKind::Join {
                    left,
                    left_col,
                    right,
                    right_col,
                },
            ) => {
                let ls = &catalog.table(query.relations[left]).columns[left_col].stats;
                let rs = &catalog.table(query.relations[right]).columns[right_col].stats;
                rqp_catalog::ColumnStats::join_selectivity(ls, rs) < join_sel_threshold
            }
            (
                EppPolicy::Uncertain { .. },
                PredicateKind::FilterLe { rel, col, .. } | PredicateKind::FilterEq { rel, col, .. },
            ) => {
                catalog.table(query.relations[rel]).columns[col]
                    .stats
                    .histogram
                    .is_none()
                    && catalog.table(query.relations[rel]).columns[col]
                        .stats
                        .domain
                        .is_none()
            }
        })
        .map(|(i, _)| i)
        .collect()
}

/// Returns a copy of `query` re-dimensioned with the policy's epps.
///
/// # Errors
/// Fails validation if the policy selects no predicates (a zero-dimension
/// ESS is legal for the algorithms but almost certainly a configuration
/// mistake) — callers wanting that should construct the spec directly.
pub fn with_identified_epps(
    catalog: &Catalog,
    query: &QuerySpec,
    policy: EppPolicy,
) -> rqp_common::Result<QuerySpec> {
    let epps = identify_epps(catalog, query, policy);
    if epps.is_empty() {
        return Err(rqp_common::RqpError::Config(
            "epp policy selected no predicates".into(),
        ));
    }
    let mut q = query.clone();
    q.epps = epps;
    q.validate(catalog)?;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::tpcds;

    #[test]
    fn all_joins_policy_flags_every_join() {
        let cat = tpcds::catalog_sf100();
        let q = crate::tpcds_queries::q91(&cat, 2);
        let epps = identify_epps(&cat, &q, EppPolicy::AllJoins);
        let joins: Vec<usize> = q.join_preds().collect();
        assert_eq!(epps, joins);
        assert_eq!(epps.len(), 6, "Q91 has six joins");
    }

    #[test]
    fn uncertain_policy_flags_small_estimates() {
        let cat = tpcds::catalog_sf100();
        let q = crate::tpcds_queries::q91(&cat, 2);
        // Very strict threshold: flags only the joins against huge
        // dimensions (customer_address at SF100 has 5M rows → est 2e-7).
        let tight = identify_epps(
            &cat,
            &q,
            EppPolicy::Uncertain {
                join_sel_threshold: 1e-5,
            },
        );
        let loose = identify_epps(
            &cat,
            &q,
            EppPolicy::Uncertain {
                join_sel_threshold: 1.1,
            },
        );
        assert!(!tight.is_empty());
        assert!(tight.len() < loose.len());
        // threshold 1.1 over-approximates AllJoins on join predicates
        let joins: Vec<usize> = q.join_preds().collect();
        let loose_joins: Vec<usize> = loose
            .iter()
            .copied()
            .filter(|&p| q.predicates[p].kind.is_join())
            .collect();
        assert_eq!(loose_joins, joins);
    }

    #[test]
    fn redimensioning_produces_valid_query() {
        let cat = tpcds::catalog_sf100();
        let q = crate::tpcds_queries::q91(&cat, 2);
        assert_eq!(q.ndims(), 2);
        let conservative = with_identified_epps(&cat, &q, EppPolicy::AllJoins).unwrap();
        assert_eq!(conservative.ndims(), 6);
        conservative.validate(&cat).unwrap();
    }

    #[test]
    fn empty_selection_rejected() {
        let cat = tpcds::catalog_sf100();
        let q = crate::tpcds_queries::q91(&cat, 2);
        let res = with_identified_epps(
            &cat,
            &q,
            EppPolicy::Uncertain {
                join_sel_threshold: 0.0,
            },
        );
        assert!(res.is_err());
    }
}
