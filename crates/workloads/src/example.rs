//! The paper's introductory example query `EQ` (Fig. 1).
//!
//! ```sql
//! SELECT * FROM part, lineitem, orders
//! WHERE p_partkey = l_partkey          -- epp (dim 0)
//!   AND o_orderkey = l_orderkey        -- epp (dim 1)
//!   AND p_retailprice < 1000
//! ```
//!
//! The two join predicates are error-prone; the price filter is assumed
//! reliably estimated — exactly the configuration whose 2D ESS, iso-cost
//! contours and bouquet/SpillBound execution sequences Fig. 2 walks
//! through.

use crate::builder::QueryBuilder;
use rqp_catalog::Catalog;
use rqp_optimizer::QuerySpec;

/// Builds `EQ` over a [`rqp_catalog::tpch`] catalog.
pub fn example_query_eq(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    let part = qb.rel("part");
    let lineitem = qb.rel("lineitem");
    let orders = qb.rel("orders");
    qb.join(part, "p_partkey", lineitem, "l_partkey", true);
    qb.join(orders, "o_orderkey", lineitem, "l_orderkey", true);
    qb.filter_le(part, "p_retailprice", 999, false);
    qb.build("EQ")
        .unwrap_or_else(|e| panic!("EQ definition invalid: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::tpch;

    #[test]
    fn eq_matches_fig1() {
        let cat = tpch::catalog(1.0);
        let q = example_query_eq(&cat);
        assert_eq!(q.ndims(), 2, "two error-prone joins");
        assert_eq!(q.relations.len(), 3);
        assert_eq!(q.predicates.len(), 3);
        q.validate(&cat).unwrap();
        let sql = q.to_sql(&cat);
        assert!(sql.contains("p_retailprice <= 999"));
    }
}
