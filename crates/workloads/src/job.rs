//! Join Order Benchmark Query 1a (§6.5).
//!
//! JOB runs over IMDB and is designed to be hostile to native optimizers:
//! correlated predicates make its join selectivities badly mis-estimated.
//! As in the paper, we drop the implicit (cyclic) predicates so the
//! selectivity-independence assumption holds, and mark the two
//! fact-to-title joins error-prone.

use crate::builder::QueryBuilder;
use rqp_catalog::Catalog;
use rqp_optimizer::QuerySpec;

/// JOB Q1a core: `company_type ⋈ movie_companies ⋈ title ⋈
/// movie_info_idx ⋈ info_type`, with the `mc⋈t` and `mii⋈t` joins
/// error-prone (2 epps).
pub fn q1a(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    let ct = qb.rel("company_type");
    let mc = qb.rel("movie_companies");
    let t = qb.rel("title");
    let mii = qb.rel("movie_info_idx");
    let it = qb.rel("info_type");
    qb.join(mc, "mc_movie_id", t, "t_id", true);
    qb.join(mii, "mii_movie_id", t, "t_id", true);
    qb.join(mc, "mc_company_type_id", ct, "ct_id", false);
    qb.join(mii, "mii_info_type_id", it, "it_id", false);
    qb.filter_eq(ct, "ct_kind", 1, false);
    qb.filter_eq(it, "it_info", 50, false);
    qb.filter_le(t, "t_production_year", 110, false);
    qb.build("JOB_Q1a")
        .unwrap_or_else(|e| panic!("JOB Q1a definition invalid: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::imdb;

    #[test]
    fn q1a_validates() {
        let cat = imdb::catalog_full();
        let q = q1a(&cat);
        assert_eq!(q.ndims(), 2);
        assert_eq!(q.relations.len(), 5);
        q.validate(&cat).unwrap();
    }
}
