//! Benchmark workloads (§6.1).
//!
//! The paper's test suite is "representative SPJ queries from the TPC-DS
//! benchmark, operating at the base size of 100 GB", with 2–6 error-prone
//! join predicates, named `xD_Qz` (x = epp count, z = TPC-DS query
//! number), plus Query 1a of the Join Order Benchmark (§6.5). This crate
//! defines those join-graph cores over the catalogs of `rqp-catalog`,
//! the per-query ESS grid resolutions, and dataset recipes for
//! executor-backed (wall-clock) runs.
//!
//! ```
//! use rqp_catalog::tpcds;
//! use rqp_workloads::{paper_suite, q91_with_dims};
//!
//! let catalog = tpcds::catalog_sf100();
//! assert_eq!(paper_suite(&catalog).len(), 11);
//! let q = q91_with_dims(&catalog, 4);
//! assert_eq!(q.name(), "4D_Q91");
//! assert_eq!(q.grid().ndims(), 4);
//! println!("{}", q.query.to_sql(&catalog));
//! ```

pub mod builder;
pub mod epps;
pub mod example;
pub mod job;
pub mod suite;
pub mod tpcds_queries;

pub use builder::QueryBuilder;
pub use epps::{identify_epps, with_identified_epps, EppPolicy};
pub use example::example_query_eq;
pub use suite::{
    executable_genspec, executable_genspec_with_errors, paper_suite, q91_with_dims, scale_from_env,
    scaled_genspec_with_errors, zipf_exponent_for, BenchQuery,
};

pub use suite::{dimensionality_matrix, with_first_epps};
