//! The paper's query suite and per-query ESS configurations.

use crate::tpcds_queries as q;
use rqp_catalog::datagen::{ColumnGen, GenSpec, TableGenSpec};
use rqp_catalog::Catalog;
use rqp_common::MultiGrid;
use rqp_optimizer::QuerySpec;

/// One benchmark configuration: a query plus its ESS discretization.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// The SPJ specification (named `xD_Qz`).
    pub query: QuerySpec,
    /// Grid points per ESS dimension.
    pub grid_points: usize,
    /// Smallest grid selectivity.
    pub min_sel: f64,
}

impl BenchQuery {
    /// The ESS grid for this configuration.
    pub fn grid(&self) -> MultiGrid {
        MultiGrid::uniform(self.query.ndims(), self.min_sel, self.grid_points)
    }

    /// Short name (`"4D_Q91"`).
    pub fn name(&self) -> &str {
        &self.query.name
    }

    /// The same configuration at an overridden per-dimension resolution —
    /// how lazy compiles lift a suite query to the high-resolution grids
    /// dense sweeps cannot afford.
    pub fn with_grid_points(mut self, points: usize) -> Self {
        assert!(points >= 2, "a grid needs at least 2 points per dimension");
        self.grid_points = points;
        self
    }
}

/// Grid resolution per dimensionality: higher-D spaces use coarser axes so
/// the exhaustive MSOe sweeps stay tractable — the same compromise the
/// paper's discretized ESS makes.
pub fn default_grid_points(d: usize) -> usize {
    match d {
        0 | 1 => 64,
        2 => 24,
        3 => 12,
        4 => 8,
        5 => 6,
        _ => 5,
    }
}

/// Grid resolution per dimensionality for **lazy** compiles: contour
/// discovery materializes cells on demand instead of sweeping the grid,
/// so high-D queries afford far finer axes than
/// [`default_grid_points`] — at least 16 points per dimension even at
/// 5D/6D, where a dense sweep of `16^6 ≈ 16.7M` optimizer calls is out of
/// the question.
pub fn lazy_grid_points(d: usize) -> usize {
    match d {
        0 | 1 => 64,
        2 => 24,
        _ => 16,
    }
}

fn bench(query: QuerySpec) -> BenchQuery {
    let d = query.ndims();
    BenchQuery {
        query,
        grid_points: default_grid_points(d),
        min_sel: 1e-7,
    }
}

/// The eleven TPC-DS configurations evaluated in Figs. 8, 10, 11 and 13.
pub fn paper_suite(catalog: &Catalog) -> Vec<BenchQuery> {
    vec![
        bench(q::q15(catalog)),
        bench(q::q96(catalog)),
        bench(q::q7(catalog)),
        bench(q::q26(catalog)),
        bench(q::q27(catalog)),
        bench(q::q91(catalog, 4)),
        bench(q::q19(catalog)),
        bench(q::q29(catalog)),
        bench(q::q84(catalog)),
        bench(q::q18(catalog)),
        bench(q::q91(catalog, 6)),
    ]
}

/// Q91 at dimensionalities 2–6 (Fig. 9).
pub fn q91_with_dims(catalog: &Catalog, d: usize) -> BenchQuery {
    bench(q::q91(catalog, d))
}

/// Builds a dataset recipe materializing exactly the tables of `query`,
/// with surrogate keys serial and every other column uniform over its
/// catalog NDV — so foreign-key join selectivities land near the cost
/// model's estimates and filters near their uniform estimates.
///
/// Use a small-scale catalog (e.g. `tpcds::catalog(0.002)`) so the
/// executor-backed wall-clock experiments finish in seconds.
pub fn executable_genspec(catalog: &Catalog, query: &QuerySpec, seed: u64) -> GenSpec {
    executable_genspec_with_errors(catalog, query, seed, &vec![1.0; query.ndims()])
}

/// Matched-skew error injection: the Zipf exponent `s` such that two iid
/// `Zipf(s)` columns over a domain of size `n` join with selectivity
/// `Σ p_k² ≈ target_sel`. Solved by bisection (`Σ p_k²` is monotone in
/// `s`, from `1/n` at `s = 0` toward `1` as `s → ∞`).
pub fn zipf_exponent_for(n: u64, target_sel: f64) -> f64 {
    let n = n.max(2);
    let p2 = |s: f64| -> f64 {
        let mut norm = 0.0;
        let mut sq = 0.0;
        for k in 0..n {
            let w = 1.0 / ((k + 1) as f64).powf(s);
            norm += w;
            sq += w * w;
        }
        sq / (norm * norm)
    };
    let target = target_sel.clamp(1.0 / n as f64, 0.99);
    let (mut lo, mut hi) = (0.0f64, 20.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if p2(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Dataset scale factor from the `RQP_SCALE` environment variable
/// (default 1.0) — the knob the wall-clock benches use to run the
/// tab03-style comparison 10–100× larger. Invalid or non-positive
/// values fall back to 1.0.
pub fn scale_from_env() -> f64 {
    std::env::var("RQP_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&f| f > 0.0)
        .unwrap_or(1.0)
}

/// [`executable_genspec_with_errors`] with every table scaled by
/// `scale` (see [`rqp_catalog::datagen::GenSpec::scaled`]): the
/// error-injection skew is derived first, at catalog statistics, then
/// cardinalities are multiplied — so planted per-table selectivities
/// survive the scale-up.
pub fn scaled_genspec_with_errors(
    catalog: &Catalog,
    query: &QuerySpec,
    seed: u64,
    error: &[f64],
    scale: f64,
) -> GenSpec {
    executable_genspec_with_errors(catalog, query, seed, error).scaled(scale)
}

/// Like [`executable_genspec`], but *injects estimation error*: the true
/// selectivity of epp `j` is planted at roughly `error[j] ×` the
/// statistics-derived estimate `1/max(NDV)`, by generating **both** join
/// endpoints with matched Zipf skew over the full domain. Crucially the
/// per-column statistics barely change (same domain, near-full NDV), so
/// even a fresh `ANALYZE` keeps estimating `≈ 1/NDV` — the error persists,
/// exactly like the correlation/skew effects that plague real estimators
/// (§1: "the reasons for such substantial deviations are well
/// documented").
pub fn executable_genspec_with_errors(
    catalog: &Catalog,
    query: &QuerySpec,
    seed: u64,
    error: &[f64],
) -> GenSpec {
    assert_eq!(error.len(), query.ndims());
    let mut skew: std::collections::HashMap<(usize, usize), (u64, f64)> =
        std::collections::HashMap::new();
    for (j, &p) in query.epps.iter().enumerate() {
        if let rqp_optimizer::PredicateKind::Join {
            left,
            left_col,
            right,
            right_col,
        } = query.predicates[p].kind
        {
            let ndv =
                |rel: usize, col: usize| catalog.table(query.relations[rel]).columns[col].stats.ndv;
            let n = ndv(left, left_col).max(ndv(right, right_col)).max(2);
            let target_sel = error[j].max(1.0) / n as f64;
            let s = if error[j] <= 1.0 {
                0.0
            } else {
                zipf_exponent_for(n, target_sel)
            };
            for (rel, col) in [(left, left_col), (right, right_col)] {
                let e = skew.entry((query.relations[rel], col)).or_insert((n, s));
                if s > e.1 {
                    *e = (n, s);
                }
            }
        }
    }
    base_genspec(catalog, query, seed, &skew)
}

fn base_genspec(
    catalog: &Catalog,
    query: &QuerySpec,
    seed: u64,
    skew: &std::collections::HashMap<(usize, usize), (u64, f64)>,
) -> GenSpec {
    let mut tables: Vec<usize> = query.relations.clone();
    tables.sort_unstable();
    tables.dedup();
    let specs = tables
        .into_iter()
        .map(|tid| {
            let t = catalog.table(tid);
            let columns = t
                .columns
                .iter()
                .enumerate()
                .map(|(cid, col)| {
                    match skew.get(&(tid, cid)) {
                        // Error-injected join endpoint: matched Zipf skew
                        // over the full domain (key columns included —
                        // deliberate key-popularity correlation is the
                        // error source).
                        Some(&(domain, s)) if s > 0.0 => ColumnGen::Zipf { domain, s },
                        Some(&(domain, _)) => ColumnGen::Uniform { domain },
                        None if cid == 0 && col.stats.ndv >= t.rows => {
                            // Convention: the first column of a dimension
                            // table is its surrogate key.
                            ColumnGen::Serial
                        }
                        None => ColumnGen::Uniform {
                            domain: col.stats.ndv,
                        },
                    }
                })
                .collect();
            TableGenSpec {
                table: tid,
                rows: t.rows,
                columns,
            }
        })
        .collect();
    GenSpec {
        seed,
        tables: specs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::{tpcds, DataSet};

    #[test]
    fn suite_has_eleven_queries_with_paper_dims() {
        let cat = tpcds::catalog_sf100();
        let suite = paper_suite(&cat);
        assert_eq!(suite.len(), 11);
        let dims: Vec<usize> = suite.iter().map(|b| b.query.ndims()).collect();
        assert_eq!(dims, vec![3, 3, 4, 4, 4, 4, 5, 5, 5, 6, 6]);
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert!(names.contains(&"4D_Q91"));
        assert!(names.contains(&"6D_Q91"));
    }

    #[test]
    fn grids_match_dimensionality() {
        let cat = tpcds::catalog_sf100();
        for b in paper_suite(&cat) {
            let g = b.grid();
            assert_eq!(g.ndims(), b.query.ndims());
            assert_eq!(g.dim(0).len(), b.grid_points);
        }
    }

    #[test]
    fn lazy_resolution_is_at_least_16_for_high_dims() {
        for d in 2..=6 {
            assert!(lazy_grid_points(d) >= 16);
            assert!(lazy_grid_points(d) >= default_grid_points(d));
        }
        let cat = tpcds::catalog_sf100();
        let b = q91_with_dims(&cat, 6).with_grid_points(lazy_grid_points(6));
        assert_eq!(b.grid_points, 16);
        assert_eq!(b.grid().len(), 16usize.pow(6));
        assert_eq!(b.name(), "6D_Q91");
    }

    #[test]
    fn error_injection_multiplies_true_selectivity() {
        let cat = tpcds::catalog(0.1);
        let query = crate::tpcds_queries::q96(&cat);
        let hd = cat.table_id("household_demographics").unwrap();
        let ss = cat.table_id("store_sales").unwrap();
        let ss_hd_col = cat.table(ss).col_id("ss_hdemo_sk").unwrap();
        let ndv = cat.table(hd).rows as f64;
        for error in [1.0, 10.0, 50.0] {
            let spec = executable_genspec_with_errors(&cat, &query, 5, &[error, 1.0, 1.0]);
            let data = DataSet::generate(&cat, &spec).unwrap();
            let sel = data
                .true_join_selectivity((ss, ss_hd_col), (hd, 0))
                .unwrap();
            let expect = error / ndv;
            assert!(
                (sel - expect).abs() / expect < 0.5,
                "error {error}: sel {sel} vs expected {expect}"
            );
        }
    }

    #[test]
    fn injected_error_survives_analyze() {
        // The premise of the whole paper: statistics collection cannot see
        // the correlation. After ANALYZE the NDV-based join estimate must
        // still be ≈ 1/NDV while the truth is `error ×` larger.
        use rqp_catalog::analyze;
        let mut cat = tpcds::catalog(0.1);
        let query = crate::tpcds_queries::q96(&cat);
        let error = 20.0;
        let spec = executable_genspec_with_errors(&cat, &query, 5, &[error, 1.0, 1.0]);
        let data = DataSet::generate(&cat, &spec).unwrap();
        let hd = cat.table_id("household_demographics").unwrap();
        let ss = cat.table_id("store_sales").unwrap();
        let ss_hd_col = cat.table(ss).col_id("ss_hdemo_sk").unwrap();
        let truth = data
            .true_join_selectivity((ss, ss_hd_col), (hd, 0))
            .unwrap();
        analyze::analyze(&mut cat, &data, 32);
        let est = rqp_catalog::ColumnStats::join_selectivity(
            &cat.table(ss).columns[ss_hd_col].stats,
            &cat.table(hd).columns[0].stats,
        );
        assert!(
            truth / est > error * 0.4,
            "post-ANALYZE estimate {est} must still miss the truth {truth}"
        );
    }

    #[test]
    fn zipf_exponent_solver_hits_targets() {
        for n in [100u64, 10_000] {
            // s = 0 ⇒ uniform ⇒ selectivity 1/n
            assert!(zipf_exponent_for(n, 1.0 / n as f64) < 0.05);
            for mult in [5.0, 50.0] {
                let target = mult / n as f64;
                let s = zipf_exponent_for(n, target);
                assert!(s > 0.0 && s < 20.0);
                // verify by recomputing Σp²
                let mut norm = 0.0;
                let mut sq = 0.0;
                for k in 0..n {
                    let w = 1.0 / ((k + 1) as f64).powf(s);
                    norm += w;
                    sq += w * w;
                }
                let got = sq / (norm * norm);
                assert!(
                    (got - target).abs() / target < 0.02,
                    "n={n} mult={mult}: p2 {got} vs target {target}"
                );
            }
        }
    }

    #[test]
    fn executable_genspec_materializes_and_plants_selectivities() {
        let cat = tpcds::catalog(0.002);
        let query = crate::tpcds_queries::q96(&cat);
        let spec = executable_genspec(&cat, &query, 7);
        let data = DataSet::generate(&cat, &spec).unwrap();
        // every query relation materialized
        for &tid in &query.relations {
            assert!(data.table(tid).is_some());
        }
        // the ss⋈hd join selectivity lands near 1/|hd|
        let ss = cat.table_id("store_sales").unwrap();
        let hd = cat.table_id("household_demographics").unwrap();
        let hd_rows = cat.table(hd).rows as f64;
        let ss_hd_col = cat.table(ss).col_id("ss_hdemo_sk").unwrap();
        let sel = data
            .true_join_selectivity((ss, ss_hd_col), (hd, 0))
            .unwrap();
        let expect = 1.0 / hd_rows;
        assert!(
            (sel - expect).abs() / expect < 0.5,
            "planted sel {sel} vs 1/|hd| {expect}"
        );
    }
}

/// Restricts a query to its first `d` error-prone predicates — the
/// `xD_Qz` convention applied uniformly (Fig. 9 does exactly this for
/// Q91). The join graph is untouched; only the ESS dimensionality drops.
///
/// # Panics
/// Panics if `d` is zero or exceeds the query's epp count.
pub fn with_first_epps(query: &QuerySpec, d: usize) -> QuerySpec {
    assert!(d >= 1 && d <= query.ndims(), "d must be in 1..=D");
    let mut q = query.clone();
    q.epps.truncate(d);
    q.name = format!(
        "{}D_{}",
        d,
        q.name.split('_').next_back().unwrap_or(&q.name)
    );
    q
}

/// The full dimensionality matrix: every suite query at every
/// dimensionality from 2 to its native D. Useful for scaling studies
/// beyond the paper's Fig. 9 (which sweeps only Q91).
pub fn dimensionality_matrix(catalog: &Catalog) -> Vec<BenchQuery> {
    let mut out = Vec::new();
    for b in paper_suite(catalog) {
        for d in 2..=b.query.ndims() {
            let query = with_first_epps(&b.query, d);
            out.push(BenchQuery {
                grid_points: default_grid_points(d),
                min_sel: b.min_sel,
                query,
            });
        }
    }
    // distinct names only (e.g. 4D_Q91 appears both natively and as a
    // restriction of 6D_Q91)
    out.sort_by(|a, b| a.query.name.cmp(&b.query.name));
    out.dedup_by(|a, b| a.query.name == b.query.name);
    out
}

#[cfg(test)]
mod matrix_tests {
    use super::*;
    use rqp_catalog::tpcds;

    #[test]
    fn with_first_epps_restricts_dimensions() {
        let cat = tpcds::catalog_sf100();
        let q6 = crate::tpcds_queries::q91(&cat, 6);
        for d in 2..=6 {
            let q = with_first_epps(&q6, d);
            assert_eq!(q.ndims(), d);
            assert_eq!(q.name, format!("{d}D_Q91"));
            q.validate(&cat).unwrap();
            // restricted epps are a prefix of the original
            assert_eq!(&q.epps[..], &q6.epps[..d]);
        }
    }

    #[test]
    #[should_panic(expected = "d must be in 1..=D")]
    fn with_first_epps_rejects_zero() {
        let cat = tpcds::catalog_sf100();
        let q = crate::tpcds_queries::q96(&cat);
        let _ = with_first_epps(&q, 0);
    }

    #[test]
    fn dimensionality_matrix_is_deduped_and_valid() {
        let cat = tpcds::catalog_sf100();
        let matrix = dimensionality_matrix(&cat);
        // names unique
        let mut names: Vec<&str> = matrix.iter().map(|b| b.name()).collect();
        let total = names.len();
        names.dedup();
        assert_eq!(names.len(), total);
        assert!(total > 11, "matrix strictly larger than the native suite");
        for b in &matrix {
            b.query.validate(&cat).unwrap();
            assert_eq!(b.grid_points, default_grid_points(b.query.ndims()));
        }
        // the 2..6 Q91 ladder is present
        for d in 2..=6 {
            assert!(names.contains(&format!("{d}D_Q91").as_str()));
        }
    }
}
