//! SPJ cores of the paper's TPC-DS queries.
//!
//! Each function reproduces the join-graph geometry (chain / star /
//! branch) and the error-prone join predicates of the corresponding
//! `xD_Qz` configuration in the paper's evaluation. The epp *order*
//! defines the ESS dimensions. Filters model the queries' constant
//! predicates — these are assumed accurately estimated (non-epp), per the
//! paper's framework.

use crate::builder::QueryBuilder;
use rqp_catalog::Catalog;
use rqp_optimizer::QuerySpec;

fn must(q: rqp_common::Result<QuerySpec>) -> QuerySpec {
    q.unwrap_or_else(|e| panic!("workload definition invalid: {e}"))
}

/// TPC-DS Q91 core: catalog_returns joined to call_center, date_dim and
/// customer, with the customer's address / demographics dimensions.
/// `dims ∈ 2..=6` selects how many join predicates are error-prone
/// (Fig. 9 sweeps exactly this).
pub fn q91(catalog: &Catalog, dims: usize) -> QuerySpec {
    assert!((2..=6).contains(&dims), "Q91 supports 2..=6 epps");
    let mut qb = QueryBuilder::new(catalog);
    let cr = qb.rel("catalog_returns");
    let cc = qb.rel("call_center");
    let d = qb.rel("date_dim");
    let c = qb.rel("customer");
    let ca = qb.rel("customer_address");
    let cd = qb.rel("customer_demographics");
    let hd = qb.rel("household_demographics");
    // epp order mirrors the paper's 2D example: catalog side first, then
    // the customer-address join, then deeper customer dimensions.
    qb.join(cr, "cr_returned_date_sk", d, "d_date_sk", dims >= 1);
    qb.join(c, "c_current_addr_sk", ca, "ca_address_sk", dims >= 2);
    qb.join(
        cr,
        "cr_returning_customer_sk",
        c,
        "c_customer_sk",
        dims >= 3,
    );
    qb.join(c, "c_current_hdemo_sk", hd, "hd_demo_sk", dims >= 4);
    qb.join(c, "c_current_cdemo_sk", cd, "cd_demo_sk", dims >= 5);
    qb.join(cr, "cr_call_center_sk", cc, "cc_call_center_sk", dims >= 6);
    qb.filter_eq(d, "d_year", 100, false);
    qb.filter_le(ca, "ca_gmt_offset", 6, false);
    must(qb.build(format!("{dims}D_Q91")))
}

/// TPC-DS Q7 core: store_sales star over customer_demographics, date_dim,
/// item and promotion (4 epps).
pub fn q7(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    let ss = qb.rel("store_sales");
    let cd = qb.rel("customer_demographics");
    let d = qb.rel("date_dim");
    let i = qb.rel("item");
    let p = qb.rel("promotion");
    qb.join(ss, "ss_cdemo_sk", cd, "cd_demo_sk", true);
    qb.join(ss, "ss_sold_date_sk", d, "d_date_sk", true);
    qb.join(ss, "ss_item_sk", i, "i_item_sk", true);
    qb.join(ss, "ss_promo_sk", p, "p_promo_sk", true);
    qb.filter_eq(cd, "cd_gender", 1, false);
    qb.filter_eq(d, "d_year", 100, false);
    must(qb.build("4D_Q7"))
}

/// TPC-DS Q15 core: catalog_sales chained through customer to
/// customer_address, plus date_dim (3 epps).
pub fn q15(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    let cs = qb.rel("catalog_sales");
    let c = qb.rel("customer");
    let ca = qb.rel("customer_address");
    let d = qb.rel("date_dim");
    qb.join(cs, "cs_bill_customer_sk", c, "c_customer_sk", true);
    qb.join(c, "c_current_addr_sk", ca, "ca_address_sk", true);
    qb.join(cs, "cs_sold_date_sk", d, "d_date_sk", true);
    qb.filter_eq(d, "d_qoy", 1, false);
    must(qb.build("3D_Q15"))
}

/// TPC-DS Q18 core: catalog_sales with bill-customer demographics, the
/// customer's own demographics, address, date and item (6 epps; the
/// customer_demographics table appears twice).
pub fn q18(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    let cs = qb.rel("catalog_sales");
    let cd1 = qb.rel("customer_demographics");
    let c = qb.rel("customer");
    let cd2 = qb.rel("customer_demographics");
    let ca = qb.rel("customer_address");
    let d = qb.rel("date_dim");
    let i = qb.rel("item");
    qb.join(cs, "cs_bill_cdemo_sk", cd1, "cd_demo_sk", true);
    qb.join(cs, "cs_bill_customer_sk", c, "c_customer_sk", true);
    qb.join(c, "c_current_cdemo_sk", cd2, "cd_demo_sk", true);
    qb.join(c, "c_current_addr_sk", ca, "ca_address_sk", true);
    qb.join(cs, "cs_sold_date_sk", d, "d_date_sk", true);
    qb.join(cs, "cs_item_sk", i, "i_item_sk", true);
    qb.filter_eq(cd1, "cd_education_status", 3, false);
    qb.filter_eq(d, "d_year", 100, false);
    must(qb.build("6D_Q18"))
}

/// TPC-DS Q19 core: store_sales with date, item, customer (chained to
/// address) and store (5 epps).
pub fn q19(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    let ss = qb.rel("store_sales");
    let d = qb.rel("date_dim");
    let i = qb.rel("item");
    let c = qb.rel("customer");
    let ca = qb.rel("customer_address");
    let s = qb.rel("store");
    qb.join(ss, "ss_sold_date_sk", d, "d_date_sk", true);
    qb.join(ss, "ss_item_sk", i, "i_item_sk", true);
    qb.join(ss, "ss_customer_sk", c, "c_customer_sk", true);
    qb.join(c, "c_current_addr_sk", ca, "ca_address_sk", true);
    qb.join(ss, "ss_store_sk", s, "s_store_sk", true);
    qb.filter_eq(i, "i_manufact_id", 7, false);
    qb.filter_eq(d, "d_moy", 11, false);
    must(qb.build("5D_Q19"))
}

/// TPC-DS Q26 core: catalog_sales star over customer_demographics,
/// date_dim, item and promotion (4 epps).
pub fn q26(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    let cs = qb.rel("catalog_sales");
    let cd = qb.rel("customer_demographics");
    let d = qb.rel("date_dim");
    let i = qb.rel("item");
    let p = qb.rel("promotion");
    qb.join(cs, "cs_bill_cdemo_sk", cd, "cd_demo_sk", true);
    qb.join(cs, "cs_sold_date_sk", d, "d_date_sk", true);
    qb.join(cs, "cs_item_sk", i, "i_item_sk", true);
    qb.join(cs, "cs_promo_sk", p, "p_promo_sk", true);
    qb.filter_eq(cd, "cd_marital_status", 2, false);
    must(qb.build("4D_Q26"))
}

/// TPC-DS Q27 core: store_sales star over customer_demographics,
/// date_dim, store and item (4 epps).
pub fn q27(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    let ss = qb.rel("store_sales");
    let cd = qb.rel("customer_demographics");
    let d = qb.rel("date_dim");
    let s = qb.rel("store");
    let i = qb.rel("item");
    qb.join(ss, "ss_cdemo_sk", cd, "cd_demo_sk", true);
    qb.join(ss, "ss_sold_date_sk", d, "d_date_sk", true);
    qb.join(ss, "ss_store_sk", s, "s_store_sk", true);
    qb.join(ss, "ss_item_sk", i, "i_item_sk", true);
    qb.filter_eq(s, "s_state", 5, false);
    must(qb.build("4D_Q27"))
}

/// TPC-DS Q29 core: store_sales / store_returns / catalog_sales branch
/// with date, item and store (5 epps).
pub fn q29(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    let ss = qb.rel("store_sales");
    let sr = qb.rel("store_returns");
    let cs = qb.rel("catalog_sales");
    let d = qb.rel("date_dim");
    let i = qb.rel("item");
    let s = qb.rel("store");
    qb.join(ss, "ss_ticket_number", sr, "sr_ticket_number", true);
    qb.join(sr, "sr_customer_sk", cs, "cs_bill_customer_sk", true);
    qb.join(ss, "ss_sold_date_sk", d, "d_date_sk", true);
    qb.join(ss, "ss_item_sk", i, "i_item_sk", true);
    qb.join(ss, "ss_store_sk", s, "s_store_sk", true);
    qb.filter_le(i, "i_current_price", 49, false);
    must(qb.build("5D_Q29"))
}

/// TPC-DS Q84 core: customer chained to address, demographics, household
/// demographics (to income_band) and store_returns (5 epps).
pub fn q84(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    let c = qb.rel("customer");
    let ca = qb.rel("customer_address");
    let cd = qb.rel("customer_demographics");
    let hd = qb.rel("household_demographics");
    let ib = qb.rel("income_band");
    let sr = qb.rel("store_returns");
    qb.join(c, "c_current_addr_sk", ca, "ca_address_sk", true);
    qb.join(c, "c_current_cdemo_sk", cd, "cd_demo_sk", true);
    qb.join(c, "c_current_hdemo_sk", hd, "hd_demo_sk", true);
    qb.join(hd, "hd_income_band_sk", ib, "ib_income_band_sk", true);
    qb.join(sr, "sr_customer_sk", c, "c_customer_sk", true);
    qb.filter_eq(ca, "ca_city", 19, false);
    must(qb.build("5D_Q84"))
}

/// TPC-DS Q96 core: store_sales star over household_demographics,
/// time_dim and store (3 epps).
pub fn q96(catalog: &Catalog) -> QuerySpec {
    let mut qb = QueryBuilder::new(catalog);
    let ss = qb.rel("store_sales");
    let hd = qb.rel("household_demographics");
    let t = qb.rel("time_dim");
    let s = qb.rel("store");
    qb.join(ss, "ss_hdemo_sk", hd, "hd_demo_sk", true);
    qb.join(ss, "ss_sold_time_sk", t, "t_time_sk", true);
    qb.join(ss, "ss_store_sk", s, "s_store_sk", true);
    qb.filter_eq(hd, "hd_dep_count", 5, false);
    qb.filter_eq(t, "t_hour", 8, false);
    must(qb.build("3D_Q96"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::tpcds;

    #[test]
    fn all_queries_validate_at_sf100() {
        let cat = tpcds::catalog_sf100();
        for (q, d) in [
            (q7(&cat), 4),
            (q15(&cat), 3),
            (q18(&cat), 6),
            (q19(&cat), 5),
            (q26(&cat), 4),
            (q27(&cat), 4),
            (q29(&cat), 5),
            (q84(&cat), 5),
            (q96(&cat), 3),
        ] {
            assert_eq!(q.ndims(), d, "{}", q.name);
            q.validate(&cat).unwrap();
        }
        for d in 2..=6 {
            let q = q91(&cat, d);
            assert_eq!(q.ndims(), d);
            q.validate(&cat).unwrap();
        }
    }

    #[test]
    fn q18_uses_customer_demographics_twice() {
        let cat = tpcds::catalog_sf100();
        let q = q18(&cat);
        let cd_id = cat.table_id("customer_demographics").unwrap();
        let count = q.relations.iter().filter(|&&t| t == cd_id).count();
        assert_eq!(count, 2);
    }

    #[test]
    fn epp_dimensions_are_joins() {
        let cat = tpcds::catalog_sf100();
        for q in [q7(&cat), q91(&cat, 6), q96(&cat)] {
            for &e in &q.epps {
                assert!(
                    q.predicates[e].kind.is_join(),
                    "{}: epp {} must be a join",
                    q.name,
                    q.predicates[e].label
                );
            }
        }
    }
}
