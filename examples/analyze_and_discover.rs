//! The full engine lifecycle: generate skewed data, ANALYZE, watch the
//! native estimate still miss the join selectivities, and let SpillBound
//! discover them with a bounded overhead.
//!
//! This demonstrates the paper's premise end-to-end on real data: even
//! *freshly collected* statistics (exact NDVs, equi-depth histograms)
//! estimate filters well but mis-estimate correlated join selectivities —
//! and the ESS-based algorithms do not care, because they never trust
//! estimates in the first place.
//!
//! Run with: `cargo run --release --example analyze_and_discover`

use rqp::catalog::{analyze, tpcds, DataSet};
use rqp::core::{CostOracle, SpillBound};
use rqp::ess::EssSurface;
use rqp::executor::DataStore;
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer, PredicateKind};
use rqp::runner::measure_qa;
use rqp::workloads::{executable_genspec_with_errors, q91_with_dims};
use rqp_common::MultiGrid;

fn main() {
    // 1. Generate data whose join selectivities are 40×/15× the textbook
    //    estimates (emulating correlation the statistics cannot see).
    let mut catalog = tpcds::catalog(0.05);
    let bench = q91_with_dims(&catalog, 2);
    let query = bench.query.clone();
    let spec = executable_genspec_with_errors(&catalog, &query, 7, &[40.0, 15.0]);
    let data = DataSet::generate(&catalog, &spec).expect("generate");

    // 2. ANALYZE: refresh every statistic from the actual data.
    analyze::analyze(&mut catalog, &data, analyze::DEFAULT_BUCKETS);
    println!("ANALYZE complete: statistics now reflect the materialized data");

    // 3. Even so, the join estimates miss the truth by the planted factor.
    let store = DataStore::new(&catalog, data);
    let qa = measure_qa(&store, &query);
    let opt = Optimizer::new(
        &catalog,
        &query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("valid");
    println!("\nepp join predicates — estimate vs truth after ANALYZE:");
    for (j, &p) in query.epps.iter().enumerate() {
        let est = opt.base_sels().get(p);
        println!(
            "  dim {j} ({}): estimate {est:.2e}, truth {:.2e} ({}× off)",
            query.predicates[p].label,
            qa[j],
            (qa[j] / est).round()
        );
        assert!(matches!(
            query.predicates[p].kind,
            PredicateKind::Join { .. }
        ));
    }

    // 4. SpillBound does not care: bounded discovery regardless.
    let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, 16));
    let mut sb = SpillBound::new(&surface, &opt, 2.0);
    let grid = surface.grid();
    let coords: Vec<usize> = qa
        .iter()
        .enumerate()
        .map(|(j, &s)| grid.dim(j).nearest_idx(s))
        .collect();
    let qa_idx = grid.flat(&coords);
    let mut oracle = CostOracle::at_grid(&opt, grid, qa_idx);
    let report = sb.run(&mut oracle).expect("discovery completes");
    let subopt = report.sub_optimality(surface.opt_cost(qa_idx));
    println!(
        "\nSpillBound: {} executions, sub-optimality {subopt:.2} ≤ guarantee {}",
        report.executions(),
        sb.mso_guarantee()
    );
    assert!(subopt <= sb.mso_guarantee());

    // 5. The native optimizer's exposure at the same location:
    let choice = rqp::core::NativeChoice::compute(&surface, &opt);
    println!(
        "native optimizer at the same truth: sub-optimality {:.2} (no guarantee)",
        choice.sub_optimality(&surface, &opt, qa_idx)
    );
}
