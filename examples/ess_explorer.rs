//! Explore the error-prone selectivity space of any suite query.
//!
//! Prints the POSP/contour anatomy the discovery algorithms operate on:
//! grid shape, plan-diagram size, iso-cost contour schedule with per-
//! contour plan counts and alignment status, and the anorexic-reduced
//! bouquet — a textual rendering of the paper's Figs. 2, 3, 5 and 6.
//!
//! Run with: `cargo run --release --example ess_explorer [query]`
//! (default `3D_Q15`; see `rqp::workloads::paper_suite` for names).

use rqp::catalog::tpcds;
use rqp::core::PlanBouquet;
use rqp::ess::alignment::analyze;
use rqp::ess::{ContourSet, EssView};
use rqp::experiments::Experiment;
use rqp::optimizer::EnumerationMode;
use rqp::workloads::paper_suite;

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "3D_Q15".into());
    let catalog = tpcds::catalog_sf100();
    let bench = paper_suite(&catalog)
        .into_iter()
        .find(|b| b.name() == want)
        .unwrap_or_else(|| panic!("unknown query {want}"));
    let d = bench.query.ndims();

    println!("=== {} ===", bench.query.name);
    println!("relations:");
    for (i, &tid) in bench.query.relations.iter().enumerate() {
        let t = catalog.table(tid);
        println!("  r{i}: {} ({} rows)", t.name, t.rows);
    }
    println!("error-prone predicates (ESS dimensions):");
    for (j, &p) in bench.query.epps.iter().enumerate() {
        println!("  dim {j}: {}", bench.query.predicates[p].label);
    }
    println!("\nSQL:\n{}", bench.query.to_sql(&catalog));

    let exp = Experiment::build(tpcds::catalog_sf100(), bench, EnumerationMode::LeftDeep);
    let opt = exp.optimizer();
    let s = &exp.surface;
    println!(
        "\nESS grid: {} locations ({} per dim), built in {:.2}s",
        s.len(),
        s.grid().dim(0).len(),
        exp.build_secs
    );
    println!(
        "POSP: {} distinct optimal plans; optimal cost ∈ [{:.3e}, {:.3e}]",
        s.posp_size(),
        s.cmin(),
        s.cmax()
    );

    // The optimal plan at the origin and at the terminus.
    println!("\noptimal plan at the origin:");
    print!(
        "{}",
        s.plan(s.grid().origin())
            .render(&exp.bench.query, &exp.catalog)
    );
    println!("optimal plan at the terminus:");
    print!(
        "{}",
        s.plan(s.grid().terminus())
            .render(&exp.bench.query, &exp.catalog)
    );

    // Contour anatomy + alignment.
    let contours = ContourSet::build(s, 2.0);
    let report = analyze(s, &opt, &contours);
    let view = EssView::full(d);
    println!("\niso-cost contours (ratio 2):");
    println!("  i    cost          |locs|  |PL_i|  alignment");
    for i in 0..contours.len() {
        let locs = contours.locations(s, &view, i);
        let plans = contours.plans(s, &view, i);
        let align = match report.contours[i].min_penalty {
            Some(p) if p <= 1.0 + 1e-9 => "native".to_string(),
            Some(p) => format!("induced (ε = {p:.2})"),
            None => "—".to_string(),
        };
        println!(
            "  IC{:<3} {:>12.3e}  {:>5}  {:>5}   {}",
            i + 1,
            contours.cost(i),
            locs.len(),
            plans.len(),
            align
        );
    }

    // Anorexic-reduced bouquet.
    let pb = PlanBouquet::new(s, &opt, 2.0, 0.2);
    println!(
        "\nanorexic reduction (λ = 0.2): ρ_red = {} → PlanBouquet guarantee {}",
        pb.rho_red(),
        pb.mso_guarantee()
    );
    println!(
        "SpillBound guarantee D²+3D = {}; AlignedBound range [{}, {}]",
        rqp::core::spillbound_guarantee(d),
        rqp::core::aligned_guarantee_lower(d),
        rqp::core::spillbound_guarantee(d),
    );
}
