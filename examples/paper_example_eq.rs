//! The paper's introductory walk-through (Figs. 1–2) on the example query
//! `EQ`: *"SELECT * FROM part, lineitem, orders WHERE ... retailprice <
//! 1000"* with two error-prone join predicates.
//!
//! Reproduces the §1.1/§1.2 narrative: the iso-cost contours of the 2D
//! ESS, PlanBouquet's contour-by-contour budgeted execution sequence
//! (`P1|C, P2|2C, P3|2C, ...`), SpillBound's much shorter sequence, and
//! the resulting cost savings (the paper reports "more than 50 percent"
//! for its scenario).
//!
//! Run with: `cargo run --release --example paper_example_eq`

use rqp::catalog::tpch;
use rqp::common::MultiGrid;
use rqp::core::report::ExecMode;
use rqp::core::{CostOracle, PlanBouquet, SpillBound};
use rqp::ess::EssSurface;
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp::workloads::example_query_eq;

fn main() {
    let catalog = tpch::catalog(1.0);
    let query = example_query_eq(&catalog);
    println!(
        "the paper's example query EQ (Fig. 1):\n{}\n",
        query.to_sql(&catalog)
    );

    let opt = Optimizer::new(
        &catalog,
        &query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("EQ is valid");
    let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, 24));
    println!(
        "2D ESS: {} locations, {} POSP plans, costs [{:.3e}, {:.3e}]",
        surface.len(),
        surface.posp_size(),
        surface.cmin(),
        surface.cmax()
    );

    let pb = PlanBouquet::new(&surface, &opt, 2.0, 0.2);
    let mut sb = SpillBound::new(&surface, &opt, 2.0);
    println!(
        "bouquet: ρ_red = {} → PB guarantee {:.1}; SB guarantee D²+3D = {}",
        pb.rho_red(),
        pb.mso_guarantee(),
        sb.mso_guarantee()
    );

    // A query instance in an intermediate region, like Fig. 2a's q.
    let grid = surface.grid();
    let qa = grid.flat(&[14, 10]);
    let qa_sels = grid.sels(qa);
    println!(
        "\nhidden query location qa = ({:.2e}, {:.2e}), optimal cost {:.3e}\n",
        qa_sels[0],
        qa_sels[1],
        surface.opt_cost(qa)
    );

    let fmt_seq = |report: &rqp::core::RunReport| -> String {
        report
            .records
            .iter()
            .map(|r| {
                let p = r.plan_id.map_or("P?".into(), |p| format!("P{p}"));
                match r.mode {
                    // lowercase p for spill-mode, as in the paper's traces
                    ExecMode::Spill { .. } => format!("{}|{:.2e}", p.to_lowercase(), r.budget),
                    ExecMode::Full => format!("{p}|{:.2e}", r.budget),
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    };

    let mut oracle = CostOracle::at_grid(&opt, grid, qa);
    let pb_report = pb.run(&mut oracle).expect("PB completes");
    println!(
        "PlanBouquet sequence ({} executions, total {:.3e}):\n  {}\n",
        pb_report.executions(),
        pb_report.total_cost,
        fmt_seq(&pb_report)
    );

    let mut oracle = CostOracle::at_grid(&opt, grid, qa);
    let sb_report = sb.run(&mut oracle).expect("SB completes");
    println!(
        "SpillBound sequence ({} executions, total {:.3e}):\n  {}\n",
        sb_report.executions(),
        sb_report.total_cost,
        fmt_seq(&sb_report)
    );

    let savings = 100.0 * (1.0 - sb_report.total_cost / pb_report.total_cost);
    println!(
        "sub-optimality: PB {:.2} vs SB {:.2} → SpillBound saves {savings:.0}% \
         (the paper's scenario saved \"more than 50 percent\")",
        pb_report.sub_optimality(surface.opt_cost(qa)),
        sb_report.sub_optimality(surface.opt_cost(qa)),
    );
}
