//! Dev utility: times each algorithm's exhaustive ESS sweep separately.
//!
//! Run with: `cargo run --release --example profile_eval [query]`

use rqp::catalog::tpcds;
use rqp::core::eval;
use rqp::experiments::Experiment;
use rqp::optimizer::EnumerationMode;
use rqp::workloads::paper_suite;
use std::time::Instant;

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "5D_Q19".into());
    let catalog = tpcds::catalog_sf100();
    let bench = paper_suite(&catalog)
        .into_iter()
        .find(|b| b.name() == want)
        .expect("known query");
    let t = Instant::now();
    let exp = Experiment::build(catalog, bench, EnumerationMode::LeftDeep);
    println!(
        "surface: {:.2}s ({} locs, {} plans)",
        t.elapsed().as_secs_f64(),
        exp.surface.len(),
        exp.surface.posp_size()
    );
    let opt = exp.optimizer();

    let t = Instant::now();
    let pbc = rqp::core::PlanBouquet::new(&exp.surface, &opt, 2.0, 0.2);
    println!(
        "PB compile (anorexic): {:.2}s (rho_red {})",
        t.elapsed().as_secs_f64(),
        pbc.rho_red()
    );
    drop(pbc);
    let t = Instant::now();
    let pb = eval::evaluate_planbouquet_fast(&exp.surface, &opt, 2.0, 0.2).unwrap();
    println!("PB : {:.2}s (mso {:.1})", t.elapsed().as_secs_f64(), pb.mso);

    let t = Instant::now();
    let sb = eval::evaluate_spillbound(&exp.surface, &opt, 2.0).unwrap();
    println!("SB : {:.2}s (mso {:.1})", t.elapsed().as_secs_f64(), sb.mso);

    let t = Instant::now();
    let (ab, pen) = eval::evaluate_alignedbound(&exp.surface, &opt, 2.0).unwrap();
    println!(
        "AB : {:.2}s (mso {:.1}, max penalty {pen:.2})",
        t.elapsed().as_secs_f64(),
        ab.mso
    );

    let t = Instant::now();
    let nat = eval::evaluate_native(&exp.surface, &opt).unwrap();
    println!(
        "NAT: {:.2}s (mso {:.1})",
        t.elapsed().as_secs_f64(),
        nat.mso
    );
}

#[allow(dead_code)]
fn unused() {}
