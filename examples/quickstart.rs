//! Quickstart: robust processing of a TPC-DS query with SpillBound.
//!
//! Builds the error-prone selectivity space for TPC-DS Q91 with two
//! error-prone joins (the paper's Fig. 7 scenario), then runs SpillBound
//! against a hidden true location and prints the discovery trace — the
//! budgeted spill-mode executions, the selectivities learnt, and the final
//! sub-optimality vs. the `D² + 3D = 10` guarantee.
//!
//! Run with: `cargo run --release --example quickstart`

use rqp::catalog::tpcds;
use rqp::common::MultiGrid;
use rqp::core::report::ExecMode;
use rqp::core::{CostOracle, Outcome, SpillBound};
use rqp::ess::EssSurface;
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp::workloads;
use std::time::Instant;

fn main() {
    // 1. The TPC-DS catalog at the paper's scale (SF = 100) and Q91 with
    //    two error-prone join predicates.
    let catalog = tpcds::catalog_sf100();
    let bench = workloads::q91_with_dims(&catalog, 2);
    let d = bench.query.ndims();
    println!(
        "query: {} ({} relations, D = {d} error-prone joins)",
        bench.query.name,
        bench.query.relations.len()
    );
    for (j, &p) in bench.query.epps.iter().enumerate() {
        println!("  dim {j}: {}", bench.query.predicates[p].label);
    }

    // 2. Build the optimizer and sweep it over the ESS grid (selectivity
    //    injection) to obtain the POSP / optimal cost surface.
    let opt = Optimizer::new(
        &catalog,
        &bench.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("workload query is valid");
    let grid = MultiGrid::uniform(d, 1e-7, 24);
    let t = Instant::now();
    let surface = EssSurface::build(&opt, grid);
    println!(
        "\nESS: {} locations, {} POSP plans, cost range [{:.3e}, {:.3e}] ({} ms to build)",
        surface.len(),
        surface.posp_size(),
        surface.cmin(),
        surface.cmax(),
        t.elapsed().as_millis()
    );

    // 3. Compile SpillBound and pick a hidden true location qa.
    let mut sb = SpillBound::new(&surface, &opt, 2.0);
    println!(
        "contours: {} (cost-doubling), MSO guarantee: {}",
        sb.contours().len(),
        sb.mso_guarantee()
    );
    let qa = surface.grid().flat(&[16, 13]);
    let qa_sels = surface.grid().sels(qa);
    let qa_fmt: Vec<String> = qa_sels.iter().map(|s| format!("{s:.3e}")).collect();
    println!("\nhidden true location qa = ({})", qa_fmt.join(", "));

    // 4. Discover.
    let mut oracle = CostOracle::at_grid(&opt, surface.grid(), qa);
    let report = sb.run(&mut oracle).expect("discovery completes");
    println!("\ndiscovery trace:");
    for r in &report.records {
        let mode = match r.mode {
            ExecMode::Spill { dim } => format!("spill(dim {dim})"),
            ExecMode::Full => "full".to_string(),
        };
        let outcome = match r.outcome {
            Outcome::Completed { sel: Some(s) } => format!("completed, learnt sel {s:.3e}"),
            Outcome::Completed { sel: None } => "completed — query done".to_string(),
            Outcome::TimedOut { lower_bound } => {
                format!("timed out, qa > {lower_bound:.3e}")
            }
        };
        println!(
            "  IC{:<2} plan {:>3}  {:<13} budget {:>12.0}  spent {:>12.0}  {}",
            r.contour + 1,
            r.plan_id.map_or("new".into(), |p| p.to_string()),
            mode,
            r.budget,
            r.spent,
            outcome
        );
    }

    // 5. The verdict.
    let subopt = report.sub_optimality(surface.opt_cost(qa));
    println!(
        "\ntotal cost {:.0} vs oracle-optimal {:.0} → sub-optimality {subopt:.2} (guarantee {})",
        report.total_cost,
        surface.opt_cost(qa),
        sb.mso_guarantee()
    );
    assert!(subopt <= sb.mso_guarantee());
    println!("within the platform-independent D²+3D bound ✓");
}
