//! Compares all four strategies on one benchmark query.
//!
//! Reproduces the paper's central empirical claim on a single query: the
//! native optimizer's worst case is enormous, PlanBouquet bounds it
//! behaviorally, SpillBound bounds it structurally (`D²+3D`), and
//! AlignedBound pushes the empirical MSO toward the `2D+2` ideal.
//!
//! Run with: `cargo run --release --example robust_vs_native [query]`
//! where `query` is one of the suite names (default `3D_Q96`).

use rqp::catalog::tpcds;
use rqp::core::native::native_mso_worst_case;
use rqp::experiments::{compare, fmt, print_table, Experiment};
use rqp::optimizer::EnumerationMode;
use rqp::workloads::paper_suite;
use std::time::Instant;

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "3D_Q96".into());
    let catalog = tpcds::catalog_sf100();
    let bench = paper_suite(&catalog)
        .into_iter()
        .find(|b| b.name() == want)
        .unwrap_or_else(|| {
            let names: Vec<String> = paper_suite(&catalog)
                .iter()
                .map(|b| b.name().to_string())
                .collect();
            panic!("unknown query {want}; available: {}", names.join(", "))
        });

    println!("building ESS for {want} ...");
    let t = Instant::now();
    let exp = Experiment::build(catalog, bench, EnumerationMode::LeftDeep);
    println!(
        "surface: {} locations, {} POSP plans ({:.2}s)",
        exp.surface.len(),
        exp.surface.posp_size(),
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    let row = compare(&exp, 2.0, 0.2);
    let opt = exp.optimizer();
    let native_worst = native_mso_worst_case(&exp.surface, &opt);
    println!(
        "exhaustive evaluation over {} locations ({:.2}s)",
        exp.surface.len(),
        t.elapsed().as_secs_f64()
    );

    print_table(
        &format!("{want}: worst/average sub-optimality"),
        &["strategy", "MSO guarantee", "MSO empirical", "ASO"],
        &[
            vec![
                "native (fixed qe)".into(),
                "∞".into(),
                fmt(row.msoe_native, 1),
                "-".into(),
            ],
            vec![
                "native (worst qe)".into(),
                "∞".into(),
                fmt(native_worst, 1),
                "-".into(),
            ],
            vec![
                "PlanBouquet".into(),
                fmt(row.msog_pb, 1),
                fmt(row.msoe_pb, 1),
                fmt(row.aso_pb, 2),
            ],
            vec![
                "SpillBound".into(),
                fmt(row.msog_sb, 1),
                fmt(row.msoe_sb, 1),
                fmt(row.aso_sb, 2),
            ],
            vec![
                format!("AlignedBound (≥{})", row.msog_ab_lower),
                fmt(row.msog_sb, 1),
                fmt(row.msoe_ab, 1),
                fmt(row.aso_ab, 2),
            ],
        ],
    );
    println!(
        "\nρ_red = {} (anorexic λ=0.2); AB max part penalty = {:.2}",
        row.rho_red, row.ab_max_penalty
    );
}
