//! Sub-optimality geography: where in the ESS each strategy hurts.
//!
//! Renders ASCII heat maps of per-location sub-optimality over a 2D ESS
//! for the native optimizer, PlanBouquet, SpillBound and AlignedBound —
//! the spatial view behind the paper's Fig. 12 histogram. Native pain
//! concentrates far from its estimate; the robust algorithms flatten the
//! whole space to single digits.
//!
//! Run with: `cargo run --release --example subopt_heatmap [query]`
//! (2-epp configurations only; default `2D_Q91`).

use rqp::catalog::tpcds;
use rqp::core::eval::{
    evaluate_alignedbound, evaluate_native, evaluate_planbouquet_fast, evaluate_spillbound,
    SubOptStats,
};
use rqp::experiments::Experiment;
use rqp::optimizer::EnumerationMode;
use rqp::workloads::q91_with_dims;

/// Glyph ramp: sub-optimality 1 → blank, up to >100 → '#'.
fn glyph(sub: f64) -> char {
    match sub {
        s if s < 1.5 => '·',
        s if s < 3.0 => ':',
        s if s < 5.0 => '+',
        s if s < 10.0 => 'x',
        s if s < 30.0 => 'X',
        s if s < 100.0 => '%',
        _ => '#',
    }
}

fn heatmap(title: &str, stats: &SubOptStats, nx: usize, ny: usize) {
    println!(
        "\n{title}: MSO {:.1}, ASO {:.2}, median {:.2}",
        stats.mso,
        stats.aso,
        stats.percentile(50.0)
    );
    for y in (0..ny).rev() {
        let row: String = (0..nx).map(|x| glyph(stats.subopts[y * nx + x])).collect();
        println!("  |{row}|");
    }
    println!("  +{}+", "-".repeat(nx));
}

fn main() {
    let catalog = tpcds::catalog_sf100();
    let bench = q91_with_dims(&catalog, 2);
    let exp = Experiment::build(catalog, bench, EnumerationMode::LeftDeep);
    let opt = exp.optimizer();
    let grid = exp.surface.grid();
    let (nx, ny) = (grid.dim(0).len(), grid.dim(1).len());
    println!("sub-optimality heat maps over the 2D_Q91 ESS ({nx}×{ny}, x = dim 0 →, y = dim 1 ↑)");
    println!("legend: · <1.5   : <3   + <5   x <10   X <30   % <100   # ≥100");

    let native = evaluate_native(&exp.surface, &opt).expect("native");
    heatmap("native optimizer (fixed estimate)", &native, nx, ny);

    let pb = evaluate_planbouquet_fast(&exp.surface, &opt, 2.0, 0.2).expect("PB");
    heatmap("PlanBouquet", &pb, nx, ny);

    let sb = evaluate_spillbound(&exp.surface, &opt, 2.0).expect("SB");
    heatmap("SpillBound", &sb, nx, ny);

    let (ab, _) = evaluate_alignedbound(&exp.surface, &opt, 2.0).expect("AB");
    heatmap("AlignedBound", &ab, nx, ny);

    println!(
        "\nworst locations — native: {:?}, SB: {:?} (grid coords)",
        grid.coords(native.worst_qa),
        grid.coords(sb.worst_qa)
    );
}
