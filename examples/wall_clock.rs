//! Wall-clock drill-down on TPC-DS Q91 with four epps (paper §6.3,
//! Table 3).
//!
//! Unlike the cost-based experiments, this one *actually executes* plans
//! on the Volcano engine over materialized synthetic data: budgets are
//! enforced by cost metering, spilled subtrees run alone with their output
//! discarded, and selectivities are learnt from observed tuple counts.
//! The output mirrors Table 3: per contour, the selectivities learnt so
//! far (in %), the executing plan, and cumulative wall-clock time — for
//! the native optimizer, SpillBound and AlignedBound, against the
//! oracle-optimal plan.
//!
//! Run with: `cargo run --release --example wall_clock`

use rqp::catalog::tpcds;
use rqp::core::report::{ExecMode, RunReport};
use rqp::core::{AlignedBound, Outcome, SpillBound};
use rqp::ess::EssSurface;
use rqp::executor::{DataStore, Executor};
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp::runner::{measure_qa, ExecOracle};
use rqp::workloads::{executable_genspec_with_errors, q91_with_dims};
use rqp_catalog::DataSet;
use std::time::{Duration, Instant};

fn print_drilldown(report: &RunReport, timings: &[Duration], d: usize) {
    println!("  contour | learnt so far (%)                      | plan exec        | cum. time");
    let mut learnt: Vec<Option<f64>> = vec![None; d];
    let mut cum = Duration::ZERO;
    for (r, t) in report.records.iter().zip(timings) {
        cum += *t;
        if let (ExecMode::Spill { dim }, Outcome::Completed { sel: Some(s) }) = (r.mode, r.outcome)
        {
            learnt[dim] = Some(s);
        }
        let learnt_str: Vec<String> = learnt
            .iter()
            .enumerate()
            .map(|(j, v)| match v {
                Some(s) => format!("e{j}={:.3}%", s * 100.0),
                None => format!("e{j}=?"),
            })
            .collect();
        let mode = match r.mode {
            ExecMode::Spill { dim } => format!("spill(e{dim})"),
            ExecMode::Full => "full".into(),
        };
        println!(
            "  IC{:<5} | {:<38} | {:<16} | {:>7.3}s",
            r.contour + 1,
            learnt_str.join(" "),
            format!(
                "{} {}",
                mode,
                r.plan_id.map_or("custom".into(), |p| format!("P{p}"))
            ),
            cum.as_secs_f64()
        );
    }
}

fn main() {
    // Small-scale TPC-DS so executions take seconds, not hours.
    let catalog = tpcds::catalog(0.1);
    let bench = q91_with_dims(&catalog, 4);
    let query = &bench.query;
    println!(
        "wall-clock experiment: {} over TPC-DS at reduced scale",
        query.name
    );

    // Materialize the data — with estimation error injected: the true epp
    // selectivities are 10–50× the statistics-derived estimates, which is
    // exactly the regime where native optimizers fall over (§1).
    let errors = [30.0, 10.0, 50.0, 20.0];
    let spec = executable_genspec_with_errors(&catalog, query, 20260707, &errors);
    let data = DataSet::generate(&catalog, &spec).expect("generate dataset");
    let store = DataStore::new(&catalog, data);
    let qa = measure_qa(&store, query);
    let qa_fmt: Vec<String> = qa.iter().map(|s| format!("{s:.2e}")).collect();
    println!("true epp selectivities qa = ({})", qa_fmt.join(", "));

    // Optimizer + ESS surface at this scale.
    let opt = Optimizer::new(
        &catalog,
        query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("query valid");
    let surface = EssSurface::build(&opt, bench.grid());
    let exec = || Executor::new(&catalog, query, &store, CostParams::default());

    // Oracle-optimal: the plan an omniscient optimizer would pick.
    let (opt_plan, _) = opt.optimize_at(&qa);
    let t = Instant::now();
    let out = exec()
        .run_full(&opt_plan, f64::INFINITY)
        .expect("optimal plan runs");
    let t_opt = t.elapsed();
    println!(
        "\noracle-optimal plan: {} result rows in {:.3}s",
        out.rows_out,
        t_opt.as_secs_f64()
    );

    // Native optimizer: commit to the estimate's plan. An unbounded run
    // can take (almost arbitrarily) long — the paper's premise — so we cap
    // it at 200× the optimal plan's metered cost and report the abort.
    let est: Vec<f64> = query.epps.iter().map(|&p| opt.base_sels().get(p)).collect();
    let (native_plan, _) = opt.optimize_at(&est);
    let native_cap = 200.0 * out.spent;
    let t = Instant::now();
    let nat = exec()
        .run_full(&native_plan, native_cap)
        .expect("native plan runs");
    let t_native = t.elapsed();
    if nat.completed {
        println!(
            "native optimizer:    {} result rows in {:.3}s (sub-optimality {:.2})",
            nat.rows_out,
            t_native.as_secs_f64(),
            t_native.as_secs_f64() / t_opt.as_secs_f64().max(1e-9)
        );
    } else {
        println!(
            "native optimizer:    ABORTED after spending 200× the optimal plan's cost \
             ({:.3}s wall) — unbounded sub-optimality, as the paper warns",
            t_native.as_secs_f64()
        );
    }

    // SpillBound with the executor-backed oracle.
    let mut sb = SpillBound::new(&surface, &opt, 2.0);
    let mut oracle = ExecOracle::new(exec(), &opt, surface.grid());
    let t = Instant::now();
    let report = sb.run(&mut oracle).expect("SpillBound completes");
    let t_sb = t.elapsed();
    println!(
        "\nSpillBound: {} executions, {:.3}s total (sub-optimality {:.2}, guarantee {})",
        report.executions(),
        t_sb.as_secs_f64(),
        t_sb.as_secs_f64() / t_opt.as_secs_f64(),
        sb.mso_guarantee()
    );
    print_drilldown(&report, &oracle.timings, query.ndims());

    // AlignedBound likewise.
    let mut ab = AlignedBound::new(&surface, &opt, 2.0);
    let mut oracle = ExecOracle::new(exec(), &opt, surface.grid());
    let t = Instant::now();
    let report = ab.run(&mut oracle).expect("AlignedBound completes");
    let t_ab = t.elapsed();
    println!(
        "\nAlignedBound: {} executions, {:.3}s total (sub-optimality {:.2}, range [{}, {}])",
        report.executions(),
        t_ab.as_secs_f64(),
        t_ab.as_secs_f64() / t_opt.as_secs_f64(),
        ab.mso_guarantee_lower(),
        ab.mso_guarantee()
    );
    print_drilldown(&report, &oracle.timings, query.ndims());

    println!(
        "\nsummary (wall-clock): optimal {:.3}s | native {:.3}s | SpillBound {:.3}s | AlignedBound {:.3}s",
        t_opt.as_secs_f64(),
        t_native.as_secs_f64(),
        t_sb.as_secs_f64(),
        t_ab.as_secs_f64()
    );
}
