//! Warm start: persist a compiled ESS to disk and serve it.
//!
//! The expensive part of robust query processing is entirely offline —
//! the POSP sweep, iso-cost contours, anorexic reduction, and the recost
//! matrix. This example compiles that state once for 3D_Q91 into an
//! [`ArtifactStore`], shows that the second start is a pure load (orders
//! of magnitude faster), then stands up an in-process `rqp-server` on an
//! ephemeral port and answers a `run_spillbound` request from the warm
//! artifact.
//!
//! Run with: `cargo run --release --example warm_start`

use rqp::artifacts::{ArtifactStore, Provenance};
use rqp::catalog::tpcds;
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp::server::{request_line, serve, Client, Registry, ServedQuery, ServerConfig};
use rqp::workloads::q91_with_dims;

fn main() {
    // 1. Optimizer for the workload query, exactly as the harness builds it.
    let catalog = tpcds::catalog_sf100();
    let bench = q91_with_dims(&catalog, 3);
    let name = bench.query.name.clone();
    let opt = Optimizer::new(
        &catalog,
        &bench.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("workload query is valid");

    // 2. First pass: cold — compile the full pipeline and save it.
    let store = ArtifactStore::new(std::env::temp_dir().join("rqp-warm-start-example"));
    std::fs::remove_file(store.path_for(&name)).ok();
    let (artifact, prov) = store
        .compile_or_load(&opt, &bench.grid(), 2.0, 0.2, 4)
        .expect("compile + save");
    let cold = match prov {
        Provenance::Cold { compile, save, .. } => {
            println!(
                "cold start: compiled {name} in {:.3}s (+ {:.3}s to save {})",
                compile.as_secs_f64(),
                save.as_secs_f64(),
                store.path_for(&name).display()
            );
            compile + save
        }
        Provenance::Warm { .. } => unreachable!("file was removed above"),
    };
    println!(
        "  {} grid locations, {} POSP plans, {} contours, bouquet rho_red = {}",
        artifact.surface.len(),
        artifact.surface.posp_size(),
        artifact.contours.len(),
        artifact.rho_red
    );

    // 3. Second pass: warm — same call, now a pure load + validate.
    let (artifact, prov) = store
        .compile_or_load(&opt, &bench.grid(), 2.0, 0.2, 4)
        .expect("load");
    let warm = match prov {
        Provenance::Warm { load } => {
            println!("warm start: loaded in {:.4}s", load.as_secs_f64());
            load
        }
        Provenance::Cold { .. } => unreachable!("file was just written"),
    };
    println!(
        "  -> warm start is {:.0}x faster\n",
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)
    );

    // 4. Serve the warm artifact and talk to it over TCP.
    let catalog: &'static _ = Box::leak(Box::new(tpcds::catalog_sf100()));
    let mut registry = Registry::new();
    registry.insert(ServedQuery::from_artifact(artifact, catalog).expect("artifact is consistent"));
    let handle = serve(registry, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    println!("serving on {}", handle.addr);

    let mut client = Client::connect(handle.addr).expect("connect");
    for (id, method, qa) in [
        (1.0, "run_spillbound", vec![0.01, 0.2, 0.05]),
        (2.0, "run_native", vec![0.01, 0.2, 0.05]),
        (3.0, "stats", vec![]),
    ] {
        let query = (method != "stats").then_some(name.as_str());
        let response = client
            .call_raw(&request_line(id, method, query, &qa, None))
            .expect("request");
        println!("{method}: {response}");
    }
    handle.stop();
}
