//! `rqp` — command-line driver for the robust query processing library.
//!
//! ```text
//! rqp list                          list the benchmark queries
//! rqp explore <query>               POSP / contour anatomy of a query
//! rqp run <query> <algo> [qa...]    run discovery at a true location
//! rqp compare <query>               MSOg/MSOe/ASO across all algorithms
//! ```
//!
//! `<algo>` is one of `sb` (SpillBound), `ab` (AlignedBound),
//! `pb` (PlanBouquet), `pop` (re-optimization baseline), `native`.
//! `qa` is one selectivity per error-prone predicate (defaults to the
//! middle of the space).

use rqp::catalog::tpcds;
use rqp::core::report::ExecMode;
use rqp::core::{AlignedBound, CostOracle, Outcome, PlanBouquet, PopReoptimizer, SpillBound};
use rqp::experiments::{compare, fmt, print_table, Experiment};
use rqp::optimizer::EnumerationMode;
use rqp::workloads::paper_suite;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rqp list\n  rqp explore <query>\n  rqp run <query> <sb|ab|pb|pop|native> [qa...]\n  rqp run-sql <sql> [qa...]    (mark epps with `-- epp` comments)\n  rqp compare <query>"
    );
    ExitCode::FAILURE
}

fn find_query(name: &str) -> Option<rqp::workloads::BenchQuery> {
    let catalog = tpcds::catalog_sf100();
    paper_suite(&catalog).into_iter().find(|b| b.name() == name)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            let catalog = tpcds::catalog_sf100();
            println!("benchmark queries (TPC-DS SF100 SPJ cores):");
            for b in paper_suite(&catalog) {
                println!(
                    "  {:<8} D={} relations={} grid={}^D",
                    b.name(),
                    b.query.ndims(),
                    b.query.relations.len(),
                    b.grid_points
                );
            }
            ExitCode::SUCCESS
        }
        Some("explore") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(bench) = find_query(name) else {
                eprintln!("unknown query {name}; try `rqp list`");
                return ExitCode::FAILURE;
            };
            let exp = Experiment::build(tpcds::catalog_sf100(), bench, EnumerationMode::LeftDeep);
            let d = exp.bench.query.ndims();
            println!(
                "{name}: {} grid locations, {} POSP plans, costs [{:.3e}, {:.3e}], built in {:.2}s",
                exp.surface.len(),
                exp.surface.posp_size(),
                exp.surface.cmin(),
                exp.surface.cmax(),
                exp.build_secs
            );
            println!(
                "guarantees: SB D²+3D = {}, AB range [{}, {}]",
                rqp::core::spillbound_guarantee(d),
                rqp::core::aligned_guarantee_lower(d),
                rqp::core::spillbound_guarantee(d)
            );
            ExitCode::SUCCESS
        }
        Some("run") => {
            let (Some(name), Some(algo)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let Some(bench) = find_query(name) else {
                eprintln!("unknown query {name}; try `rqp list`");
                return ExitCode::FAILURE;
            };
            let d = bench.query.ndims();
            let qa: Vec<f64> = if args.len() > 3 {
                let parsed: Option<Vec<f64>> = args[3..].iter().map(|s| s.parse().ok()).collect();
                match parsed {
                    Some(v)
                        if v.len() == d
                            && v.iter().all(|s| (0.0..=1.0).contains(s) && *s > 0.0) =>
                    {
                        v
                    }
                    _ => {
                        eprintln!("expected {d} selectivities in (0,1]");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                vec![1e-3; d]
            };
            let exp = Experiment::build(tpcds::catalog_sf100(), bench, EnumerationMode::LeftDeep);
            let opt = exp.optimizer();
            let grid = exp.surface.grid();
            // Snap qa to the grid so the oracle's optimum is well-defined.
            let coords: Vec<usize> = qa
                .iter()
                .enumerate()
                .map(|(j, &s)| grid.dim(j).nearest_idx(s))
                .collect();
            let qa_idx = grid.flat(&coords);
            let opt_cost = exp.surface.opt_cost(qa_idx);
            let report = match algo.as_str() {
                "sb" => {
                    let mut a = SpillBound::new(&exp.surface, &opt, 2.0);
                    let mut o = CostOracle::at_grid(&opt, grid, qa_idx);
                    a.run(&mut o).expect("discovery completes")
                }
                "ab" => {
                    let mut a = AlignedBound::new(&exp.surface, &opt, 2.0);
                    let mut o = CostOracle::at_grid(&opt, grid, qa_idx);
                    a.run(&mut o).expect("discovery completes")
                }
                "pb" => {
                    let a = PlanBouquet::new(&exp.surface, &opt, 2.0, 0.2);
                    let mut o = CostOracle::at_grid(&opt, grid, qa_idx);
                    a.run(&mut o).expect("discovery completes")
                }
                "pop" => {
                    let pop = PopReoptimizer::new(&opt, 2.0);
                    let run = pop.run(&grid.sels(qa_idx));
                    println!(
                        "POP: {} restarts, total cost {:.0}, sub-optimality {:.2} (no guarantee)",
                        run.restarts,
                        run.total_cost,
                        run.total_cost / opt_cost
                    );
                    return ExitCode::SUCCESS;
                }
                "native" => {
                    let choice = rqp::core::NativeChoice::compute(&exp.surface, &opt);
                    println!(
                        "native: sub-optimality {:.2} at this qa (no guarantee)",
                        choice.sub_optimality(&exp.surface, &opt, qa_idx)
                    );
                    return ExitCode::SUCCESS;
                }
                other => {
                    eprintln!("unknown algorithm {other}");
                    return usage();
                }
            };
            for r in &report.records {
                let mode = match r.mode {
                    ExecMode::Spill { dim } => format!("spill(e{dim})"),
                    ExecMode::Full => "full".into(),
                };
                let out = match r.outcome {
                    Outcome::Completed { sel: Some(s) } => format!("learnt {s:.3e}"),
                    Outcome::Completed { sel: None } => "query done".into(),
                    Outcome::TimedOut { lower_bound } => format!("timeout, qa > {lower_bound:.2e}"),
                };
                println!(
                    "IC{:<3} {:<10} budget {:>12.0}  {}",
                    r.contour + 1,
                    mode,
                    r.budget,
                    out
                );
            }
            println!(
                "total {:.0} vs optimal {:.0} → sub-optimality {:.2}",
                report.total_cost,
                opt_cost,
                report.sub_optimality(opt_cost)
            );
            ExitCode::SUCCESS
        }
        Some("run-sql") => {
            let Some(sql) = args.get(1) else {
                return usage();
            };
            let catalog = tpcds::catalog_sf100();
            let query = match rqp::optimizer::parse_sql(&catalog, "adhoc", sql) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let d = query.ndims();
            if d == 0 {
                eprintln!("no predicates marked `-- epp`; nothing to discover");
                return ExitCode::FAILURE;
            }
            println!("parsed {d}-epp query:\n{}\n", query.to_sql(&catalog));
            let qa: Vec<f64> = if args.len() > 2 {
                match args[2..]
                    .iter()
                    .map(|s| s.parse().ok())
                    .collect::<Option<Vec<f64>>>()
                {
                    Some(v)
                        if v.len() == d
                            && v.iter().all(|s| (0.0..=1.0).contains(s) && *s > 0.0) =>
                    {
                        v
                    }
                    _ => {
                        eprintln!("expected {d} selectivities in (0,1]");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                vec![1e-3; d]
            };
            use rqp::common::MultiGrid;
            use rqp::ess::EssSurface;
            use rqp::optimizer::{CostParams, Optimizer};
            let opt = Optimizer::new(
                &catalog,
                &query,
                CostParams::default(),
                EnumerationMode::LeftDeep,
            )
            .expect("parsed query validated");
            let points = rqp::workloads::suite::default_grid_points(d);
            let surface = EssSurface::build(&opt, MultiGrid::uniform(d, 1e-7, points));
            let grid = surface.grid();
            let coords: Vec<usize> = qa
                .iter()
                .enumerate()
                .map(|(j, &s)| grid.dim(j).nearest_idx(s))
                .collect();
            let qa_idx = grid.flat(&coords);
            let mut sb = SpillBound::new(&surface, &opt, 2.0);
            let mut o = CostOracle::at_grid(&opt, grid, qa_idx);
            let report = sb.run(&mut o).expect("discovery completes");
            println!(
                "SpillBound: {} executions, sub-optimality {:.2} (guarantee {})",
                report.executions(),
                report.sub_optimality(surface.opt_cost(qa_idx)),
                sb.mso_guarantee()
            );
            if let Some(art) = rqp::core::report::render_trace_2d(&report, grid) {
                println!("\n{art}");
            }
            ExitCode::SUCCESS
        }
        Some("compare") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(bench) = find_query(name) else {
                eprintln!("unknown query {name}; try `rqp list`");
                return ExitCode::FAILURE;
            };
            let exp = Experiment::build(tpcds::catalog_sf100(), bench, EnumerationMode::LeftDeep);
            let row = compare(&exp, 2.0, 0.2);
            print_table(
                &format!("{name}: comparison"),
                &["strategy", "MSOg", "MSOe", "ASO"],
                &[
                    vec![
                        "native".into(),
                        "∞".into(),
                        fmt(row.msoe_native, 1),
                        "-".into(),
                    ],
                    vec![
                        "PlanBouquet".into(),
                        fmt(row.msog_pb, 1),
                        fmt(row.msoe_pb, 1),
                        fmt(row.aso_pb, 2),
                    ],
                    vec![
                        "SpillBound".into(),
                        fmt(row.msog_sb, 1),
                        fmt(row.msoe_sb, 1),
                        fmt(row.aso_sb, 2),
                    ],
                    vec![
                        "AlignedBound".into(),
                        fmt(row.msog_sb, 1),
                        fmt(row.msoe_ab, 1),
                        fmt(row.aso_ab, 2),
                    ],
                ],
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
