//! `rqp` — command-line driver for the robust query processing library.
//!
//! ```text
//! rqp list                          list the benchmark queries
//! rqp explore <query>               POSP / contour anatomy of a query
//! rqp run <query> <algo> [qa...]    run discovery at a true location
//! rqp compare <query>               MSOg/MSOe/ASO across all algorithms
//! rqp compile <query>               compile + persist the query's artifact
//!                                   (--lazy: contour-only sparse artifact)
//! rqp serve                         serve compiled artifacts over TCP
//!                                   (--recover: journal replay + quarantine + cache pre-warm)
//! rqp client <addr> <method> ...    issue one request to a server
//! rqp chaos [query]                 seeded fault-injection sweep (MSO under faults)
//! rqp chaos --crash                 crash-recovery matrix (abort at every named
//!                                   crashpoint + seeded SIGKILL rounds, then recover)
//! rqp trace <query> [algo] [qa...]  per-contour budget/cost timeline of one run
//! rqp trace --check <file>          validate a JSONL trace against the event schema
//! ```
//!
//! `<algo>` is one of `sb` (SpillBound), `ab` (AlignedBound),
//! `pb` (PlanBouquet), `pop` (re-optimization baseline), `native`, or
//! `pa` (penalty-aware single-plan selection over a selectivity prior).
//! `qa` is one selectivity per error-prone predicate (defaults to the
//! middle of the space).

use rqp::artifacts::{ArtifactStore, CompiledArtifact, Provenance, SparseArtifact};
use rqp::catalog::tpcds;
use rqp::common::RqpError;
use rqp::core::report::ExecMode;
use rqp::core::{
    AlignedBound, CostOracle, FaultyOracle, Outcome, PlanBouquet, PopReoptimizer, SelectionMode,
    SpillBound,
};
use rqp::ess::{ContourSet, LazySurface, SurfaceAccess};
use rqp::experiments::{compare, fmt, harness_threads, print_table, Experiment};
use rqp::faults::{FaultPlan, FaultSite, RetryPolicy};
use rqp::obs::{
    prof, JsonlSink, MetricValue, MetricsRegistry, RingSink, TeeSink, TraceEvent, TraceRecord,
    TraceSink, Tracer,
};
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer, SparseCostMatrix};
use rqp::server::{serve, ArtifactCache, Client, Registry, ServedQuery, ServerConfig};
use rqp::workloads::{paper_suite, q91_with_dims};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rqp list\n  rqp explore <query>\n  rqp run <query> <sb|ab|pb|pop|native|pa> [qa...]\n  rqp run <query> <sb|ab|pb|native> --paged [--pool-frames N]\n           (executor-backed out-of-core run over the slotted-page store;\n            env: RQP_PAGE_SIZE / RQP_POOL_FRAMES)\n  rqp run-sql <sql> [qa...]    (mark epps with `-- epp` comments)\n  rqp compare <query>\n  rqp compile <query> [--dir DIR] [--threads N] [--force] [--lazy [--points N]]\n  rqp serve [--addr HOST:PORT] [--dir DIR] [--queries q1,q2] [--workers N] [--queue N] [--threads N]\n           [--shards N] [--max-conns N] [--cache-mb MB] [--tenant-quota N] [--pool-frames N] [--recover]\n           (every artifact in --dir is servable via the LRU cache; --queries are pinned)\n           (--recover: replay the intent journal, quarantine corrupt artifacts,\n            and pre-warm the LRU cache from the persisted hot-set manifest)\n           (env: RQP_FAULT_RATE=R RQP_FAULT_SEED=N enable fault injection)\n  rqp bench-serve [--queries q1,q2] [--clients N] [--secs S] [--pipeline D] [--dir DIR]\n           [--workers N] [--shards N] [--queue N] [--threads N] [--min-rps R]\n           (closed-loop throughput/latency bench over precompiled explains)\n  rqp client <addr> <method> [query] [qa...] [--deadline-ms N]\n  rqp chaos [query] [--seed N] [--rate R]   (defaults: 2D_Q91, seed 42, rate 0.1;\n           also sweeps the page-level fault sites over the paged backend and the\n           penalty-aware risk evaluation)\n  rqp chaos --crash [--seed N]   crash-recovery matrix: abort the victim process at\n           every named crashpoint (RQP_CRASH_POINT) plus 5 seeded random-delay\n           SIGKILL rounds, recover, and assert bit-identical reports\n  rqp trace <query> [sb|ab|pb|pa] [qa...] [--jsonl FILE] [--flame FILE]\n           (env: RQP_TRACE=jsonl:FILE mirrors the event stream to FILE)\n  rqp trace --check <file>   validate a JSONL trace file"
    );
    ExitCode::FAILURE
}

fn find_query(name: &str) -> Option<rqp::workloads::BenchQuery> {
    let catalog = tpcds::catalog_sf100();
    if let Some(b) = paper_suite(&catalog).into_iter().find(|b| b.name() == name) {
        return Some(b);
    }
    // Q91 at any dimensionality 2–6 (Fig. 9 family), e.g. `2D_Q91`.
    for d in 2..=6usize {
        if name == format!("{d}D_Q91") {
            return Some(q91_with_dims(&catalog, d));
        }
    }
    None
}

/// Value of `--flag V` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn artifact_dir(args: &[String]) -> String {
    flag_value(args, "--dir").unwrap_or_else(|| "target/artifacts".into())
}

/// Resolves the storage configuration: `RQP_PAGE_SIZE` / `RQP_POOL_FRAMES`
/// from the environment, then a `--pool-frames N` command-line override.
fn storage_config(args: &[String]) -> Result<rqp::storage::StorageConfig, String> {
    let mut config = rqp::storage::StorageConfig::from_env().map_err(|e| e.to_string())?;
    if let Some(s) = flag_value(args, "--pool-frames") {
        let n: usize = s
            .trim()
            .parse()
            .map_err(|_| format!("--pool-frames expects an integer (got {s})"))?;
        config = config.with_pool_frames(n);
    }
    config.validated().map_err(|e| e.to_string())
}

/// Prints the storage-layer counters of a paged run (pool traffic, spill
/// pages, absorbed page faults) in a stable greppable format.
fn print_pool_counters(registry: &MetricsRegistry) {
    for (name, value) in registry.snapshot() {
        if !name.starts_with("storage.") {
            continue;
        }
        match value {
            MetricValue::Counter(v) => println!("metric {name} = {v}"),
            MetricValue::Gauge(v) => println!("metric {name} = {v}"),
            MetricValue::Histogram { count, sum, .. } => {
                println!("metric {name} = {count} obs / {sum:.0} us")
            }
        }
    }
}

/// `rqp run <query> <algo> --paged [--pool-frames N]`: an executor-backed
/// out-of-core run — the query's tables are materialized into the
/// slotted-page heap store and every scan goes through the pinning buffer
/// pool, so a pool smaller than the working set really thrashes.
fn run_paged(name: &str, algo: &str, args: &[String]) -> ExitCode {
    use rqp::ess::EssSurface;
    use rqp::executor::{Engine, PlanEngine as _};
    use rqp::runner::{measure_qa, ExecOracle};
    use rqp::storage::PagedStore;

    let config = match storage_config(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Executable scale: synthetic TPC-DS at SF 0.1 — the sf100 statistics
    // catalog has no materializable data.
    let catalog = tpcds::catalog(0.1);
    let Some(bench) = (2..=6usize)
        .find(|d| name == format!("{d}D_Q91"))
        .map(|d| q91_with_dims(&catalog, d))
    else {
        eprintln!("--paged runs support the Q91 family (2D_Q91 .. 6D_Q91); got {name}");
        return ExitCode::FAILURE;
    };
    let query = &bench.query;
    let d = query.ndims();
    let errors = [30.0, 10.0, 50.0, 20.0, 15.0, 25.0];
    let spec =
        rqp::workloads::executable_genspec_with_errors(&catalog, query, 20260707, &errors[..d]);
    let data = rqp::catalog::DataSet::generate(&catalog, &spec).expect("generate dataset");
    let store = match PagedStore::materialize(&catalog, &data, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("materialize paged store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pool = store.pool();
    println!(
        "paged store: {} B pages x {} frames ({} KiB pool)",
        pool.page_size(),
        pool.frame_count(),
        (pool.page_size() * pool.frame_count()) >> 10
    );
    // Ground truth comes from the materialized data, not from positional
    // qa arguments (the paged backend measures it bit-identically to the
    // in-memory one).
    let qa = measure_qa(&store, query);
    let qa_fmt: Vec<String> = qa.iter().map(|s| format!("{s:.2e}")).collect();
    println!("measured qa = ({})", qa_fmt.join(", "));

    let opt = Optimizer::new(
        &catalog,
        query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("valid query");
    let surface = EssSurface::build(&opt, bench.grid());
    // Batch-first dispatch: every suite plan runs vectorized; any
    // fallback to the row engine shows up in the store's registry.
    let exec = || {
        Engine::new(&catalog, query, &store, CostParams::default()).with_metrics(store.registry())
    };
    let (opt_plan, _) = opt.optimize_at(&qa);
    let opt_out = exec()
        .run_full(&opt_plan, f64::INFINITY)
        .expect("optimal plan runs");

    let report = match algo {
        "native" => {
            // The native optimizer trusts its estimates; cap the run at
            // 200x the optimal metered cost so the CLI terminates.
            let est: Vec<f64> = query.epps.iter().map(|&p| opt.base_sels().get(p)).collect();
            let (native_plan, _) = opt.optimize_at(&est);
            let nat = exec()
                .run_full(&native_plan, 200.0 * opt_out.spent)
                .expect("native runs");
            let note = if nat.completed {
                String::new()
            } else {
                " (ABORTED at 200x optimal cost)".into()
            };
            println!(
                "native: sub-optimality {:.2}{note} (no guarantee)",
                nat.spent / opt_out.spent
            );
            print_pool_counters(store.registry());
            return ExitCode::SUCCESS;
        }
        "sb" => {
            let mut a = SpillBound::new(&surface, &opt, 2.0);
            let mut o = ExecOracle::new(exec(), &opt, surface.grid());
            a.run(&mut o).expect("discovery completes")
        }
        "ab" => {
            let mut a = AlignedBound::new(&surface, &opt, 2.0);
            let mut o = ExecOracle::new(exec(), &opt, surface.grid());
            a.run(&mut o).expect("discovery completes")
        }
        "pb" => {
            let a = PlanBouquet::new(&surface, &opt, 2.0, 0.2);
            let mut o = ExecOracle::new(exec(), &opt, surface.grid());
            a.run(&mut o).expect("discovery completes")
        }
        other => {
            eprintln!("unknown algorithm {other} (--paged supports sb|ab|pb|native)");
            return usage();
        }
    };
    for r in &report.records {
        let mode = match r.mode {
            ExecMode::Spill { dim } => format!("spill(e{dim})"),
            ExecMode::Full => "full".into(),
        };
        let out = match r.outcome {
            Outcome::Completed { sel: Some(s) } => format!("learnt {s:.3e}"),
            Outcome::Completed { sel: None } => "query done".into(),
            Outcome::TimedOut { lower_bound } => format!("timeout, qa > {lower_bound:.2e}"),
        };
        println!(
            "IC{:<3} {:<10} budget {:>12.0}  {}",
            r.contour + 1,
            mode,
            r.budget,
            out
        );
    }
    println!(
        "total {:.0} vs optimal {:.0} -> sub-optimality {:.2} (MSO bound {})",
        report.total_cost,
        opt_out.spent,
        report.sub_optimality(opt_out.spent),
        rqp::core::spillbound_guarantee(d)
    );
    print_pool_counters(store.registry());
    ExitCode::SUCCESS
}

/// Compiles (or warm-loads) the artifact for `name`, printing provenance.
fn compile_one(
    store: &ArtifactStore,
    name: &str,
    threads: usize,
    force: bool,
) -> Result<(CompiledArtifact, Provenance), String> {
    let bench = find_query(name).ok_or_else(|| format!("unknown query {name}; try `rqp list`"))?;
    if force {
        let _ = std::fs::remove_file(store.path_for(name));
    }
    let catalog = tpcds::catalog_sf100();
    let opt = Optimizer::new(
        &catalog,
        &bench.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .map_err(|e| e.to_string())?;
    let (mut artifact, prov) = store
        .compile_or_load(&opt, &bench.grid(), 2.0, 0.2, threads)
        .map_err(|e| e.to_string())?;
    // Penalty-aware selection rides along in the artifact: attach it to
    // cold compiles and upgrade warm-loaded pre-penalty (v1) files in
    // place, so every served artifact carries the chosen plan + prior
    // hash for the server's load-time verification.
    if artifact.penalty.is_none() {
        use rqp::core::{PenaltyConfig, PriorConfig};
        let (summary, sel) = rqp::experiments::penalty_summary(
            &artifact,
            &opt,
            PriorConfig::default(),
            &PenaltyConfig::default(),
        )
        .map_err(|e| e.to_string())?;
        println!(
            "{name}: penalty-aware selection: plan {:?} (prior {}, expected {:.4}, CVaR {:.4})",
            summary.chosen_plan, summary.prior_hash, sel.chosen.expected, sel.chosen.cvar
        );
        artifact = artifact.with_penalty(summary);
        artifact
            .save(&store.path_for(name))
            .map_err(|e| e.to_string())?;
    }
    match &prov {
        Provenance::Warm { load } => println!(
            "{name}: warm load in {:.3}s from {}",
            load.as_secs_f64(),
            store.path_for(name).display()
        ),
        Provenance::Cold {
            reason,
            compile,
            save,
        } => println!(
            "{name}: cold compile ({reason:?}) in {:.3}s + save {:.3}s to {}",
            compile.as_secs_f64(),
            save.as_secs_f64(),
            store.path_for(name).display()
        ),
    }
    Ok((artifact, prov))
}

/// `rqp compile <query> --lazy [--points N]`: discover the contour
/// skylines on a [`LazySurface`] (cells optimized on demand), warm up
/// SpillBound's axis-probe selections at a deterministic qa sample, and
/// persist only the materialized cells as a sparse (version-2) artifact.
///
/// High-D suite queries default to `lazy_grid_points` (≥ 16 points/dim)
/// instead of the dense defaults, since only contour cells are optimized.
fn compile_lazy(args: &[String], name: &str) -> ExitCode {
    let Some(bench) = find_query(name) else {
        eprintln!("unknown query {name}; try `rqp list`");
        return ExitCode::FAILURE;
    };
    let d = bench.query.ndims();
    let points = match flag_value(args, "--points") {
        Some(s) => match s.parse::<usize>() {
            Ok(p) if p >= 2 => p,
            _ => {
                eprintln!("--points must be an integer >= 2 (got {s})");
                return ExitCode::FAILURE;
            }
        },
        None => rqp::workloads::suite::lazy_grid_points(d),
    };
    let bench = bench.with_grid_points(points);
    let catalog = tpcds::catalog_sf100();
    let opt = match Optimizer::new(
        &catalog,
        &bench.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let grid_len = bench.grid().len();
    println!("{name}: lazy compile over a {points}^{d} grid ({grid_len} locations)");

    let t_discover = std::time::Instant::now();
    let lazy = LazySurface::new(&opt, bench.grid());
    let contours = ContourSet::build(&lazy, 2.0);
    // Warm up the selections SpillBound needs at serve time: one
    // axis-probe discovery run per sample location (both corners, the
    // center, and each axis-extreme corner — all deterministic).
    let n = points;
    let mut sample: Vec<Vec<usize>> = vec![vec![0; d], vec![n - 1; d], vec![n / 2; d]];
    for j in 0..d {
        let mut lo = vec![0; d];
        lo[j] = n - 1;
        let mut hi = vec![n - 1; d];
        hi[j] = 0;
        sample.push(lo);
        sample.push(hi);
    }
    let mut sb = SpillBound::with_mode(&lazy, &opt, 2.0, SelectionMode::AxisProbe);
    for coords in &sample {
        let qa = lazy.grid().flat(coords);
        let mut oracle = CostOracle::at_grid(&opt, lazy.grid(), qa);
        if let Err(e) = sb.run(&mut oracle) {
            eprintln!("lazy warm-up run at {coords:?} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let discover_secs = t_discover.elapsed().as_secs_f64();
    let cells = lazy.cells_materialized();
    let calls = lazy.optimizer_calls();

    let t_matrix = std::time::Instant::now();
    let pool = lazy.pool_snapshot();
    let cell_idx: Vec<usize> = lazy.cells().iter().map(|&(q, _, _)| q).collect();
    let matrix = SparseCostMatrix::build(&opt, &pool, lazy.grid(), &cell_idx);
    let matrix_secs = t_matrix.elapsed().as_secs_f64();

    let store = ArtifactStore::new(artifact_dir(args));
    let artifact = SparseArtifact::from_lazy(&opt, &lazy, &contours, matrix, 2.0);
    let t_save = std::time::Instant::now();
    let path = match store.save_sparse(&artifact) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("save sparse artifact: {e}");
            return ExitCode::FAILURE;
        }
    };
    let save_secs = t_save.elapsed().as_secs_f64();

    // Warm verification: reload, re-seed a fresh lazy surface, and serve
    // every persisted cost — bit-equal, with zero optimizer calls.
    let t_load = std::time::Instant::now();
    let reseeded = store
        .load_sparse(name)
        .map_err(|e| e.to_string())
        .and_then(|loaded| loaded.to_lazy(&opt).map_err(|e| e.to_string()));
    let warm = match reseeded {
        Ok(w) => w,
        Err(e) => {
            eprintln!("warm-load verification failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for &(q, cost, _) in &lazy.cells() {
        if warm.opt_cost(q).to_bits() != cost.to_bits() {
            eprintln!("warm-load verification failed: cell {q} cost drifted");
            return ExitCode::FAILURE;
        }
    }
    if warm.optimizer_calls() != 0 {
        eprintln!(
            "warm-load verification failed: {} optimizer calls to serve persisted cells",
            warm.optimizer_calls()
        );
        return ExitCode::FAILURE;
    }
    let load_secs = t_load.elapsed().as_secs_f64();

    println!(
        "{name}: {} contours, {} pool plans; materialized {cells}/{grid_len} cells \
         ({:.2}%) with {calls} optimizer calls",
        contours.len(),
        pool.len(),
        100.0 * cells as f64 / grid_len as f64
    );
    println!(
        "{name}: discovery {discover_secs:.3}s + sparse matrix {matrix_secs:.3}s + save \
         {save_secs:.3}s to {}",
        path.display()
    );
    println!(
        "{name}: warm re-seed (load + serve {} persisted costs) {load_secs:.3}s, \
         0 optimizer calls",
        cell_idx.len()
    );
    let metrics = MetricsRegistry::new();
    metrics.counter("ess.cells_materialized").add(cells as u64);
    metrics.counter("ess.grid_len").add(grid_len as u64);
    metrics.counter("ess.optimizer_calls").add(calls);
    for (metric, value) in metrics.snapshot() {
        if let MetricValue::Counter(v) = value {
            println!("metric {metric} = {v}");
        }
    }
    ExitCode::SUCCESS
}

/// FNV-1a over a byte slice — for bit-exact artifact fingerprints in the
/// crash-victim report (matches the journal's checksum primitive).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// `rqp crash-victim --dir D [--recover]` — the child process of the
/// crash-recovery harness. Runs a deterministic sub-second workload that
/// walks through every named crashpoint site in order: a journaled paged
/// store (heap extend + spill create/flush), an SB/AB discovery pair at a
/// fixed location, and a journal-bracketed durable artifact save. Every
/// `report ...` line is a pure function of the workload, so an
/// interrupted run, once recovered, reproduces them bit-identically.
/// With `--recover` the journal is replayed, stray temp files swept, and
/// corrupt artifacts quarantined before the workload starts.
fn crash_victim(args: &[String]) -> ExitCode {
    use rqp::catalog::datagen::{ColumnGen, GenSpec, TableGenSpec};
    use rqp::catalog::{Catalog, Column, ColumnStats, DataSet, DataType, Table};
    use rqp::ess::EssSurface;
    use rqp::storage::{IntentKind, Journal, PagedStore, StorageConfig, TableStore};

    let Some(dir) = flag_value(args, "--dir") else {
        eprintln!("crash-victim requires --dir DIR");
        return ExitCode::FAILURE;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }

    if args.iter().any(|a| a == "--recover") {
        let tracer = Tracer::from_env();
        let started = std::time::Instant::now();
        let report = rqp::server::recover_dir(&dir, &tracer);
        let elapsed = started.elapsed();
        tracer.flush();
        println!("{}", report.summary());
        println!("recovery: elapsed {:.3} ms", elapsed.as_secs_f64() * 1e3);
    }

    // Phase 1 — journaled storage mutations. Tiny synthetic table through
    // a 4-frame pool: materialization brackets each heap file in a
    // durable intent (crash.after_journal_append), the spill writer pages
    // out mid-stream (crash.mid_spill_write) and flushes at its commit
    // barrier (crash.mid_page_flush).
    let mut cat = Catalog::new();
    let t = cat
        .add_table(Table::new(
            "t",
            0,
            vec![
                Column::new("k", DataType::Int, ColumnStats::uniform(200)).with_index(),
                Column::new("v", DataType::Int, ColumnStats::uniform(10)),
            ],
        ))
        .expect("victim table");
    let data = DataSet::generate(
        &cat,
        &GenSpec {
            seed: 9,
            tables: vec![TableGenSpec {
                table: t,
                rows: 200,
                columns: vec![ColumnGen::Serial, ColumnGen::Uniform { domain: 10 }],
            }],
        },
    )
    .expect("victim dataset");
    let cfg = StorageConfig::default()
        .with_page_size(256)
        .with_pool_frames(4)
        .with_journal(true);
    let store = match PagedStore::materialize_in(&cat, &data, cfg, MetricsRegistry::new(), &dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("materialize journaled store: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Several spill batches, each ending in a flush barrier (an fsync),
    // stretch the window of in-flight storage mutations so the SIGKILL
    // rounds of the harness land mid-mutation, not after the fact.
    let mut spilled = 0u64;
    for _ in 0..8 {
        let mut sink = store.spill_sink().expect("paged store spills");
        for i in 0..200i64 {
            if let Err(e) = sink.append(&[i, i * 3]) {
                eprintln!("spill append: {e}");
                return ExitCode::FAILURE;
            }
        }
        match sink.finish() {
            Ok(rows) => spilled += rows,
            Err(e) => {
                eprintln!("spill finish: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("report spill rows={spilled}");
    drop(store);

    // Phase 2 — discovery. SB and AB at a fixed grid location over a
    // small 2D_Q91 surface; report lines carry the raw cost bits so the
    // harness can compare crashed-and-recovered runs bit-for-bit.
    let catalog = tpcds::catalog_sf100();
    let bench = q91_with_dims(&catalog, 2).with_grid_points(5);
    let opt = Optimizer::new(
        &catalog,
        &bench.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("victim query validates");
    let surface = EssSurface::build(&opt, bench.grid());
    let qa_idx = surface.len() / 2;
    let opt_cost = surface.opt_cost(qa_idx);
    let bound = rqp::core::spillbound_guarantee(2);
    let mut mso_ok = true;
    for label in ["sb", "ab"] {
        let mut oracle = CostOracle::at_grid(&opt, surface.grid(), qa_idx);
        let report = match label {
            "sb" => SpillBound::new(&surface, &opt, 2.0).run(&mut oracle),
            _ => AlignedBound::new(&surface, &opt, 2.0).run(&mut oracle),
        }
        .expect("victim discovery completes");
        let sub = report.sub_optimality(opt_cost);
        println!(
            "report {label} total_bits={:016x} sub_bits={:016x}",
            report.total_cost.to_bits(),
            sub.to_bits()
        );
        if sub > bound * (1.0 + 1e-9) {
            mso_ok = false;
            eprintln!("victim: {label} sub-optimality {sub:.3} exceeds the MSO bound {bound}");
        }
    }

    // Phase 3 — durable artifact save bracketed by journal intents:
    // begin_durable (crash.after_journal_append), tmp+fsync+rename+dir
    // fsync (crash.before_rename / crash.after_rename), commit_durable
    // (crash.before_commit_sync).
    let art = CompiledArtifact::compile(&opt, bench.grid(), 2.0, 0.2, 2);
    let bytes = art.to_bytes();
    let store = ArtifactStore::new(&dir);
    let path = store.path_for("2D_Q91");
    let mut journal = match Journal::open(&dir) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("open journal: {e}");
            return ExitCode::FAILURE;
        }
    };
    let saved = journal
        .begin_durable(IntentKind::ArtifactSave, &path)
        .map_err(|e| e.to_string())
        .and_then(|intent| {
            art.save(&path).map_err(|e| e.to_string())?;
            journal.commit_durable(intent, 0).map_err(|e| e.to_string())
        });
    if let Err(e) = saved {
        eprintln!("journaled artifact save: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "report artifact bytes={} fnv={:016x}",
        bytes.len(),
        fnv1a64(&bytes)
    );

    if mso_ok {
        println!("victim done");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `rqp chaos --crash [--seed N]` — the crash-recovery matrix. For every
/// named crashpoint: arm it via `RQP_CRASH_POINT`, run the victim until
/// it aborts mid-mutation, then restart it with `--recover` and assert
/// (a) recovery succeeds, (b) every surviving artifact parses, and
/// (c) the recovered run's `report` lines are bit-identical to an
/// uninterrupted reference run. Five additional rounds SIGKILL the
/// victim at a seeded random delay, so torn state is exercised at
/// arbitrary instants, not only at the curated points.
fn chaos_crash(args: &[String]) -> ExitCode {
    use std::process::{Command, Stdio};

    let seed: u64 = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base = std::env::temp_dir().join(format!("rqp-crash-matrix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let report_lines = |out: &std::process::Output| -> Vec<String> {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.starts_with("report "))
            .map(str::to_string)
            .collect()
    };
    let run_victim = |dir: &std::path::Path,
                      recover: bool,
                      crash: Option<&str>|
     -> std::io::Result<std::process::Output> {
        let mut cmd = Command::new(&exe);
        cmd.arg("crash-victim").arg("--dir").arg(dir);
        if recover {
            cmd.arg("--recover");
        }
        cmd.env_remove("RQP_CRASH_POINT");
        if let Some(point) = crash {
            cmd.env("RQP_CRASH_POINT", point);
        }
        cmd.output()
    };
    // Every artifact that survived recovery must parse; a torn `.rqpa`
    // in the store root means quarantine failed.
    let artifacts_parse = |dir: &std::path::Path| -> bool {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return false;
        };
        entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rqpa"))
            .all(|p| match rqp::artifacts::load_any_path(&p) {
                Ok(_) => true,
                Err(e) => {
                    eprintln!("torn artifact survived recovery: {}: {e}", p.display());
                    false
                }
            })
    };
    // Recovered rerun: must exit cleanly, reproduce the reference report
    // bit-for-bit, and leave only parseable artifacts behind.
    let recover_and_check = |dir: &std::path::Path, want: &[String], label: &str| -> bool {
        match run_victim(dir, true, None) {
            Ok(out) if out.status.success() => {
                let got = report_lines(&out);
                if got != want {
                    eprintln!(
                        "{label}: recovered report diverged\n  want: {want:?}\n  got:  {got:?}"
                    );
                    return false;
                }
                artifacts_parse(dir)
            }
            Ok(out) => {
                eprintln!(
                    "{label}: recovery rerun failed ({}):\n{}",
                    out.status,
                    String::from_utf8_lossy(&out.stderr)
                );
                false
            }
            Err(e) => {
                eprintln!("{label}: cannot spawn recovery rerun: {e}");
                false
            }
        }
    };

    // Uninterrupted reference run in a fresh directory.
    let refdir = base.join("reference");
    let _ = std::fs::create_dir_all(&refdir);
    let want = match run_victim(&refdir, false, None) {
        Ok(out) if out.status.success() => report_lines(&out),
        Ok(out) => {
            eprintln!(
                "reference run failed ({}):\n{}",
                out.status,
                String::from_utf8_lossy(&out.stderr)
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("cannot spawn reference run: {e}");
            return ExitCode::FAILURE;
        }
    };
    if want.is_empty() {
        eprintln!("reference run produced no report lines");
        return ExitCode::FAILURE;
    }
    println!(
        "crash matrix: seed {seed}, {} crashpoints + 5 sigkill rounds, reference = {} report lines",
        rqp::faults::crash::POINTS.len(),
        want.len()
    );

    let mut failures = 0usize;
    for point in rqp::faults::crash::POINTS {
        let dir = base.join(point.replace('.', "-"));
        let _ = std::fs::create_dir_all(&dir);
        // Armed run: the crashpoint must actually fire (abnormal exit).
        let mut pass = match run_victim(&dir, false, Some(point)) {
            Ok(out) if !out.status.success() => true,
            Ok(_) => {
                eprintln!("crashpoint {point}: armed victim exited cleanly (point never hit)");
                false
            }
            Err(e) => {
                eprintln!("crashpoint {point}: cannot spawn armed victim: {e}");
                false
            }
        };
        if pass {
            pass = recover_and_check(&dir, &want, &format!("crashpoint {point}"));
        }
        println!("crashpoint {point}: {}", if pass { "PASS" } else { "FAIL" });
        if !pass {
            failures += 1;
        }
    }

    // Seeded random-delay SIGKILL rounds: no curated point, just a hard
    // kill at an arbitrary instant of the workload.
    let mut state = seed;
    let mut next = move || -> u64 {
        // SplitMix64 — the workspace's standard seeded stream.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for round in 0..5u32 {
        // The victim's mutation window is tens of milliseconds; keep the
        // kill inside it.
        let delay_ms = 1 + next() % 30;
        let dir = base.join(format!("sigkill-{round}"));
        let _ = std::fs::create_dir_all(&dir);
        let label = format!("sigkill round {round}");
        let mut pass = true;
        let mut cmd = Command::new(&exe);
        cmd.arg("crash-victim")
            .arg("--dir")
            .arg(&dir)
            .env_remove("RQP_CRASH_POINT")
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        match cmd.spawn() {
            Ok(mut child) => {
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                // `Child::kill` is SIGKILL on unix: no destructors, no
                // flushes — the hardest crash the harness can deal.
                let _ = child.kill();
                let _ = child.wait();
            }
            Err(e) => {
                eprintln!("{label}: cannot spawn victim: {e}");
                pass = false;
            }
        }
        if pass {
            pass = recover_and_check(&dir, &want, &label);
        }
        println!(
            "crash sigkill round {round} (delay {delay_ms}ms): {}",
            if pass { "PASS" } else { "FAIL" }
        );
        if !pass {
            failures += 1;
        }
    }

    let _ = std::fs::remove_dir_all(&base);
    if failures == 0 {
        println!(
            "crash matrix passed: {} crashpoints + 5 sigkill rounds, all reports bit-identical",
            rqp::faults::crash::POINTS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("crash matrix FAILED: {failures} case(s)");
        ExitCode::FAILURE
    }
}

/// Render a recorded event stream as a per-contour budget/cost timeline.
fn render_timeline(records: &[TraceRecord]) {
    // A `PlanExecuted` is always followed by its `BudgetCharged`; merge the
    // pair onto one line so each execution shows spent, budget and the
    // cumulative total side by side.
    let mut pending: Option<String> = None;
    for rec in records {
        if let Some(line) = pending.take() {
            if let TraceEvent::BudgetCharged { total, .. } = rec.event {
                println!("{line}  cum {total:>12.0}");
                continue;
            }
            println!("{line}");
        }
        match &rec.event {
            TraceEvent::RunStarted {
                algo,
                dims,
                contours,
            } => println!("[{:>4}] run {algo}: {dims} error-prone dims, {contours} contours", rec.step),
            TraceEvent::ContourEntered { contour, budget } => {
                println!("[{:>4}] IC{:<3} budget {budget:>12.0}", rec.step, contour + 1)
            }
            TraceEvent::PlanExecuted {
                plan_fingerprint,
                plan_id,
                mode,
                dim,
                budget,
                spent,
                outcome,
                ..
            } => {
                let plan = match plan_id {
                    Some(p) => format!("plan#{p}"),
                    None => format!("plan@{plan_fingerprint:08x}"),
                };
                let mode = match (mode, dim) {
                    (&"spill", Some(j)) => format!("spill(e{j})"),
                    _ => (*mode).to_string(),
                };
                pending = Some(format!(
                    "[{:>4}]   {:<10} {:<10} spent {spent:>12.0} / {budget:>12.0}  {outcome}",
                    rec.step, mode, plan
                ));
            }
            TraceEvent::BudgetCharged { total, .. } => {
                println!("[{:>4}]   cumulative cost {total:>12.0}", rec.step)
            }
            TraceEvent::SelectivityLearnt { dim, sel } => {
                println!("[{:>4}]   learnt e{dim} = {sel:.3e}", rec.step)
            }
            TraceEvent::CacheHit { cache, key } => {
                println!("[{:>4}]   cache hit  {cache} key {key:08x}", rec.step)
            }
            TraceEvent::CacheMiss { cache, key } => {
                println!("[{:>4}]   cache miss {cache} key {key:08x}", rec.step)
            }
            TraceEvent::FaultInjected { site, seq } => {
                println!("[{:>4}]   fault injected at {site} (seq {seq})", rec.step)
            }
            TraceEvent::FaultRetried { site, attempt } => {
                println!("[{:>4}]   retry {attempt} at {site}", rec.step)
            }
            TraceEvent::RunFinished {
                total_cost,
                executions,
                completed,
            } => println!(
                "[{:>4}] run finished: {executions} executions, total cost {total_cost:.0}, completed: {completed}",
                rec.step
            ),
            TraceEvent::RecoveryStep { stage, count } => {
                println!("[{:>4}] recovery {stage}: {count} item(s)", rec.step)
            }
            TraceEvent::RiskEvaluated {
                plan_fingerprint,
                plan_id,
                expected,
                cvar,
            } => {
                let plan = match plan_id {
                    Some(p) => format!("plan#{p}"),
                    None => format!("plan@{plan_fingerprint:08x}"),
                };
                println!(
                    "[{:>4}]   risk {:<10} expected {expected:>10.4}  cvar {cvar:>10.4}",
                    rec.step, plan
                );
            }
        }
    }
    if let Some(line) = pending {
        println!("{line}");
    }
}

/// Validate a JSONL trace file: every line must parse as a JSON object with
/// a monotonically increasing integer `step` and a known `kind`.
fn check_trace_file(path: &str) -> ExitCode {
    let data = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut last_step: Option<f64> = None;
    let mut kinds: std::collections::BTreeMap<&'static str, usize> = Default::default();
    let mut n = 0usize;
    for (i, line) in data.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 1;
        let value: serde::Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{path}:{lineno}: invalid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(step) = value.get("step").and_then(|s| s.as_f64()) else {
            eprintln!("{path}:{lineno}: missing numeric `step`");
            return ExitCode::FAILURE;
        };
        if step.fract() != 0.0 || step < 0.0 {
            eprintln!("{path}:{lineno}: `step` must be a non-negative integer (got {step})");
            return ExitCode::FAILURE;
        }
        if let Some(prev) = last_step {
            if step <= prev {
                eprintln!("{path}:{lineno}: `step` {step} is not greater than the previous {prev}");
                return ExitCode::FAILURE;
            }
        }
        last_step = Some(step);
        let kind = value
            .get("kind")
            .and_then(|k| k.as_str().map(str::to_string));
        let Some(kind) = kind else {
            eprintln!("{path}:{lineno}: missing string `kind`");
            return ExitCode::FAILURE;
        };
        let Some(known) = TraceEvent::KINDS.iter().find(|k| **k == kind) else {
            eprintln!("{path}:{lineno}: unknown event kind {kind:?}");
            return ExitCode::FAILURE;
        };
        *kinds.entry(known).or_default() += 1;
        n += 1;
    }
    if n == 0 {
        eprintln!("{path}: no events");
        return ExitCode::FAILURE;
    }
    let breakdown: Vec<String> = kinds.iter().map(|(k, c)| format!("{k}={c}")).collect();
    println!("trace OK: {n} events ({})", breakdown.join(", "));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            let catalog = tpcds::catalog_sf100();
            println!("benchmark queries (TPC-DS SF100 SPJ cores):");
            for b in paper_suite(&catalog) {
                println!(
                    "  {:<8} D={} relations={} grid={}^D",
                    b.name(),
                    b.query.ndims(),
                    b.query.relations.len(),
                    b.grid_points
                );
            }
            ExitCode::SUCCESS
        }
        Some("explore") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(bench) = find_query(name) else {
                eprintln!("unknown query {name}; try `rqp list`");
                return ExitCode::FAILURE;
            };
            let exp = Experiment::build(tpcds::catalog_sf100(), bench, EnumerationMode::LeftDeep);
            let d = exp.bench.query.ndims();
            println!(
                "{name}: {} grid locations, {} POSP plans, costs [{:.3e}, {:.3e}], built in {:.2}s",
                exp.surface.len(),
                exp.surface.posp_size(),
                exp.surface.cmin(),
                exp.surface.cmax(),
                exp.build_secs
            );
            println!(
                "guarantees: SB D²+3D = {}, AB range [{}, {}]",
                rqp::core::spillbound_guarantee(d),
                rqp::core::aligned_guarantee_lower(d),
                rqp::core::spillbound_guarantee(d)
            );
            ExitCode::SUCCESS
        }
        Some("run") => {
            let (Some(name), Some(algo)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            if args.iter().any(|a| a == "--paged" || a == "--pool-frames") {
                return run_paged(name, algo, &args);
            }
            let Some(bench) = find_query(name) else {
                eprintln!("unknown query {name}; try `rqp list`");
                return ExitCode::FAILURE;
            };
            let d = bench.query.ndims();
            let qa: Vec<f64> = if args.len() > 3 {
                let parsed: Option<Vec<f64>> = args[3..].iter().map(|s| s.parse().ok()).collect();
                match parsed {
                    Some(v)
                        if v.len() == d
                            && v.iter().all(|s| (0.0..=1.0).contains(s) && *s > 0.0) =>
                    {
                        v
                    }
                    _ => {
                        eprintln!("expected {d} selectivities in (0,1]");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                vec![1e-3; d]
            };
            let exp = Experiment::build(tpcds::catalog_sf100(), bench, EnumerationMode::LeftDeep);
            let opt = exp.optimizer();
            let grid = exp.surface.grid();
            // Snap qa to the grid so the oracle's optimum is well-defined.
            let coords: Vec<usize> = qa
                .iter()
                .enumerate()
                .map(|(j, &s)| grid.dim(j).nearest_idx(s))
                .collect();
            let qa_idx = grid.flat(&coords);
            let opt_cost = exp.surface.opt_cost(qa_idx);
            let report = match algo.as_str() {
                "sb" => {
                    let mut a = SpillBound::new(&exp.surface, &opt, 2.0);
                    let mut o = CostOracle::at_grid(&opt, grid, qa_idx);
                    a.run(&mut o).expect("discovery completes")
                }
                "ab" => {
                    let mut a = AlignedBound::new(&exp.surface, &opt, 2.0);
                    let mut o = CostOracle::at_grid(&opt, grid, qa_idx);
                    a.run(&mut o).expect("discovery completes")
                }
                "pb" => {
                    let a = PlanBouquet::new(&exp.surface, &opt, 2.0, 0.2);
                    let mut o = CostOracle::at_grid(&opt, grid, qa_idx);
                    a.run(&mut o).expect("discovery completes")
                }
                "pop" => {
                    let pop = PopReoptimizer::new(&opt, 2.0);
                    let run = pop.run(&grid.sels(qa_idx));
                    println!(
                        "POP: {} restarts, total cost {:.0}, sub-optimality {:.2} (no guarantee)",
                        run.restarts,
                        run.total_cost,
                        run.total_cost / opt_cost
                    );
                    return ExitCode::SUCCESS;
                }
                "native" => {
                    let choice = rqp::core::NativeChoice::compute(&exp.surface, &opt);
                    println!(
                        "native: sub-optimality {:.2} at this qa (no guarantee)",
                        choice.sub_optimality(&exp.surface, &opt, qa_idx)
                    );
                    return ExitCode::SUCCESS;
                }
                "pa" => {
                    use rqp::core::{penalty, EvalContext, PenaltyConfig, PriorConfig};
                    let choice = rqp::core::NativeChoice::compute(&exp.surface, &opt);
                    let prior = rqp::core::SelectivityPrior::lognormal(
                        grid,
                        &choice.qe_sels,
                        PriorConfig::default(),
                    )
                    .expect("prior over the ESS grid");
                    let ctx = EvalContext::new(&exp.surface, &opt);
                    let sel = penalty::select_ctx(&ctx, &prior, &PenaltyConfig::default())
                        .expect("penalty-aware selection");
                    let chosen = match sel.chosen.plan_id {
                        Some(p) => format!("plan#{p}"),
                        None => format!("plan@{:08x}", sel.chosen.fingerprint),
                    };
                    println!(
                        "penalty-aware: chose {chosen} (prior {:016x}, alpha {})",
                        sel.prior_hash, sel.alpha
                    );
                    println!(
                        "expected sub-optimality {:.4} (native plan {:.4}), CVaR {:.4}",
                        sel.chosen.expected, sel.native.expected, sel.chosen.cvar
                    );
                    let cost = match sel.chosen.plan_id {
                        Some(pid) => ctx.matrix().cost(pid, qa_idx),
                        None => opt.cost_plan(&sel.chosen_plan, &opt.sels_at(&grid.sels(qa_idx))),
                    };
                    println!(
                        "at this qa: cost {:.0} vs optimal {:.0} → sub-optimality {:.2} \
                         (no worst-case guarantee; expected-case only)",
                        cost,
                        opt_cost,
                        cost / opt_cost
                    );
                    return ExitCode::SUCCESS;
                }
                other => {
                    eprintln!("unknown algorithm {other}");
                    return usage();
                }
            };
            for r in &report.records {
                let mode = match r.mode {
                    ExecMode::Spill { dim } => format!("spill(e{dim})"),
                    ExecMode::Full => "full".into(),
                };
                let out = match r.outcome {
                    Outcome::Completed { sel: Some(s) } => format!("learnt {s:.3e}"),
                    Outcome::Completed { sel: None } => "query done".into(),
                    Outcome::TimedOut { lower_bound } => format!("timeout, qa > {lower_bound:.2e}"),
                };
                println!(
                    "IC{:<3} {:<10} budget {:>12.0}  {}",
                    r.contour + 1,
                    mode,
                    r.budget,
                    out
                );
            }
            println!(
                "total {:.0} vs optimal {:.0} → sub-optimality {:.2}",
                report.total_cost,
                opt_cost,
                report.sub_optimality(opt_cost)
            );
            ExitCode::SUCCESS
        }
        Some("run-sql") => {
            let Some(sql) = args.get(1) else {
                return usage();
            };
            let catalog = tpcds::catalog_sf100();
            let query = match rqp::optimizer::parse_sql(&catalog, "adhoc", sql) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let d = query.ndims();
            if d == 0 {
                eprintln!("no predicates marked `-- epp`; nothing to discover");
                return ExitCode::FAILURE;
            }
            println!("parsed {d}-epp query:\n{}\n", query.to_sql(&catalog));
            let qa: Vec<f64> = if args.len() > 2 {
                match args[2..]
                    .iter()
                    .map(|s| s.parse().ok())
                    .collect::<Option<Vec<f64>>>()
                {
                    Some(v)
                        if v.len() == d
                            && v.iter().all(|s| (0.0..=1.0).contains(s) && *s > 0.0) =>
                    {
                        v
                    }
                    _ => {
                        eprintln!("expected {d} selectivities in (0,1]");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                vec![1e-3; d]
            };
            use rqp::common::MultiGrid;
            use rqp::ess::EssSurface;
            use rqp::optimizer::{CostParams, Optimizer};
            let opt = Optimizer::new(
                &catalog,
                &query,
                CostParams::default(),
                EnumerationMode::LeftDeep,
            )
            .expect("parsed query validated");
            let points = rqp::workloads::suite::default_grid_points(d);
            let surface = EssSurface::build(&opt, MultiGrid::uniform(d, 1e-7, points));
            let grid = surface.grid();
            let coords: Vec<usize> = qa
                .iter()
                .enumerate()
                .map(|(j, &s)| grid.dim(j).nearest_idx(s))
                .collect();
            let qa_idx = grid.flat(&coords);
            let mut sb = SpillBound::new(&surface, &opt, 2.0);
            let mut o = CostOracle::at_grid(&opt, grid, qa_idx);
            let report = sb.run(&mut o).expect("discovery completes");
            println!(
                "SpillBound: {} executions, sub-optimality {:.2} (guarantee {})",
                report.executions(),
                report.sub_optimality(surface.opt_cost(qa_idx)),
                sb.mso_guarantee()
            );
            if let Some(art) = rqp::core::report::render_trace_2d(&report, grid) {
                println!("\n{art}");
            }
            ExitCode::SUCCESS
        }
        Some("compare") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(bench) = find_query(name) else {
                eprintln!("unknown query {name}; try `rqp list`");
                return ExitCode::FAILURE;
            };
            let exp = Experiment::build(tpcds::catalog_sf100(), bench, EnumerationMode::LeftDeep);
            let row = compare(&exp, 2.0, 0.2);
            print_table(
                &format!("{name}: comparison"),
                &["strategy", "MSOg", "MSOe", "ASO"],
                &[
                    vec![
                        "native".into(),
                        "∞".into(),
                        fmt(row.msoe_native, 1),
                        fmt(row.aso_native, 2),
                    ],
                    vec![
                        "PlanBouquet".into(),
                        fmt(row.msog_pb, 1),
                        fmt(row.msoe_pb, 1),
                        fmt(row.aso_pb, 2),
                    ],
                    vec![
                        "SpillBound".into(),
                        fmt(row.msog_sb, 1),
                        fmt(row.msoe_sb, 1),
                        fmt(row.aso_sb, 2),
                    ],
                    vec![
                        "AlignedBound".into(),
                        fmt(row.msog_sb, 1),
                        fmt(row.msoe_ab, 1),
                        fmt(row.aso_ab, 2),
                    ],
                    vec![
                        "PenaltyAware".into(),
                        "∞".into(),
                        fmt(row.msoe_pa, 1),
                        fmt(row.aso_pa, 2),
                    ],
                ],
            );
            println!(
                "penalty-aware prior-expected sub-optimality: {:.4} (native plan {:.4}), \
                 CVaR {:.4} — expected-case guarantee: PA ≤ native under the prior",
                row.aso_prior_pa, row.aso_prior_native, row.pa_cvar
            );
            ExitCode::SUCCESS
        }
        Some("compile") => {
            let Some(name) = args.get(1).filter(|n| !n.starts_with("--")) else {
                return usage();
            };
            if args.iter().any(|a| a == "--lazy") {
                return compile_lazy(&args, name);
            }
            let threads = harness_threads(4);
            let store = ArtifactStore::new(artifact_dir(&args));
            let force = args.iter().any(|a| a == "--force");
            // Cold pass (compile + save, unless a valid artifact exists
            // and --force was not given)…
            let (artifact, prov) = match compile_one(&store, name, threads, force) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            // Cold startup = what `compile_or_load` does with no usable
            // file: the full compile pipeline plus the save. When the
            // first pass found a warm artifact, re-time both stages here
            // so the comparison is always printed.
            let cold_secs = match prov {
                Provenance::Cold { compile, save, .. } => (compile + save).as_secs_f64(),
                Provenance::Warm { .. } => {
                    let bench = find_query(name).expect("query resolved above");
                    let catalog = tpcds::catalog_sf100();
                    let opt = Optimizer::new(
                        &catalog,
                        &bench.query,
                        CostParams::default(),
                        EnumerationMode::LeftDeep,
                    )
                    .expect("query validated above");
                    let t = std::time::Instant::now();
                    let recompiled = CompiledArtifact::compile(
                        &opt,
                        bench.grid(),
                        artifact.ratio,
                        artifact.lambda,
                        threads,
                    );
                    let tmp = store.path_for(&format!("{name}.cold-timing"));
                    recompiled.save(&tmp).ok();
                    let secs = t.elapsed().as_secs_f64();
                    let _ = std::fs::remove_file(&tmp);
                    secs
                }
            };
            // …then measure the warm path against the file on disk.
            let path = store.path_for(name);
            let t0 = std::time::Instant::now();
            match CompiledArtifact::load(&path) {
                Ok(loaded) => {
                    let warm_secs = t0.elapsed().as_secs_f64();
                    println!(
                        "{name}: {} grid locations, {} POSP plans, {} contours, rho_red {}",
                        loaded.surface.len(),
                        loaded.surface.posp_size(),
                        loaded.contours.len(),
                        loaded.rho_red
                    );
                    println!(
                        "{name}: cold start (compile+save) {cold_secs:.3}s vs warm start (load) \
                         {warm_secs:.3}s -> {:.1}x faster",
                        cold_secs / warm_secs
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("warm-load verification failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("serve") => {
            let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7401".into());
            // --recover runs crash recovery over the artifact directory
            // *before* anything is loaded from it: replay the intent
            // journal, sweep stray temp files, and quarantine corrupt
            // artifacts so the daemon never faults in torn state.
            let recover = args.iter().any(|a| a == "--recover");
            let recovery_tracer = Tracer::from_env();
            let mut recovery_report = recover.then(|| {
                let dir = artifact_dir(&args);
                let report = rqp::server::recover_dir(std::path::Path::new(&dir), &recovery_tracer);
                println!("{}", report.summary());
                for name in &report.quarantined_files {
                    println!("recovery: quarantined {name}");
                }
                report
            });
            let store = ArtifactStore::new(artifact_dir(&args));
            let threads = harness_threads(4);
            let names: Vec<String> = flag_value(&args, "--queries")
                .unwrap_or_else(|| "2D_Q91".into())
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let catalog: &'static _ = Box::leak(Box::new(tpcds::catalog_sf100()));
            // Out-of-core knob: --pool-frames caps any paged-backend
            // buffer pool created in this process. Validated here, then
            // exported through RQP_POOL_FRAMES so the storage layer's
            // `from_env` resolution picks it up uniformly.
            if args.iter().any(|a| a == "--pool-frames") {
                match storage_config(&args) {
                    Ok(c) => {
                        std::env::set_var(rqp::storage::ENV_POOL_FRAMES, c.pool_frames.to_string());
                        println!(
                            "storage: paged-backend pool budget {} frames x {} B pages",
                            c.pool_frames, c.page_size
                        );
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            // RQP_FAULT_RATE / RQP_FAULT_SEED turn on deterministic fault
            // injection across the oracles and socket paths; the breaker
            // + retry machinery absorbs it.
            let fault_plan = FaultPlan::from_env().map(Arc::new);
            let mut registry = Registry::new();
            for name in &names {
                let artifact = match compile_one(&store, name, threads, false) {
                    Ok((a, _)) => a,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                match ServedQuery::from_artifact(artifact, catalog) {
                    Ok(q) => {
                        let q = match &fault_plan {
                            Some(p) => q.with_faults(Arc::clone(p), RetryPolicy::no_sleep(6)),
                            None => q,
                        };
                        registry.insert(q)
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(p) = &fault_plan {
                println!(
                    "fault injection active: seed {}, socket read/write faults enabled",
                    p.seed()
                );
            }
            // Every artifact in --dir is servable, not only the pinned
            // --queries: an LRU byte-bounded cache faults the rest in on
            // first use and evicts under memory pressure.
            let cache_mb: usize = flag_value(&args, "--cache-mb")
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            let mut cache_store = ArtifactStore::new(artifact_dir(&args));
            if let Some(p) = &fault_plan {
                cache_store = cache_store.with_faults(Arc::clone(p));
            }
            let mut cache = ArtifactCache::new(cache_store, catalog, cache_mb << 20);
            if let Some(p) = &fault_plan {
                cache = cache.with_faults(Arc::clone(p), RetryPolicy::no_sleep(6));
            }
            // Pre-warm the LRU cache from the hot-set manifest the
            // previous process persisted, so a restarted server answers
            // its hot queries at warm latency from the first request.
            if let Some(report) = recovery_report.as_mut() {
                rqp::server::warm_cache(&cache, &recovery_tracer, report);
                recovery_tracer.flush();
                println!(
                    "recovery: pre-warmed {} cached quer{} from the manifest",
                    report.warm_restored,
                    if report.warm_restored == 1 {
                        "y"
                    } else {
                        "ies"
                    }
                );
            }
            let registry = registry.with_cache(cache);
            let config = ServerConfig {
                workers: flag_value(&args, "--workers")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(4),
                queue_capacity: flag_value(&args, "--queue")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(64),
                shards: flag_value(&args, "--shards")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(2),
                max_connections: flag_value(&args, "--max-conns")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1024),
                tenant_quota: flag_value(&args, "--tenant-quota").and_then(|s| s.parse().ok()),
                faults: fault_plan,
                ..ServerConfig::default()
            };
            match serve(registry, addr.as_str(), config) {
                Ok(handle) => {
                    // Surface what recovery did in the `stats` response's
                    // registry block (`recovery.*` counters).
                    if let Some(report) = &recovery_report {
                        report.register(handle.metrics().registry());
                    }
                    println!(
                        "serving {} pinned (+ LRU cache over {}) on {} (send a `shutdown` request to stop)",
                        names.join(", "),
                        artifact_dir(&args),
                        handle.addr
                    );
                    handle.wait();
                    println!("server stopped");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("bind {addr}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("bench-serve") => {
            // Closed-loop serving benchmark: N client threads hammer a
            // freshly started server with precompiled `explain` requests
            // and every response is checked byte-for-byte against a
            // single-threaded baseline. Throughput and latency quantiles
            // come from an `rqp-obs` histogram.
            let store = ArtifactStore::new(artifact_dir(&args));
            let threads = harness_threads(4);
            let names: Vec<String> = flag_value(&args, "--queries")
                .unwrap_or_else(|| "2D_Q91".into())
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let clients: usize = flag_value(&args, "--clients")
                .and_then(|s| s.parse().ok())
                .unwrap_or(8)
                .max(1);
            let secs = flag_value(&args, "--secs")
                .and_then(|s| s.parse::<f64>().ok())
                .unwrap_or(3.0)
                .max(0.1);
            let min_rps: Option<f64> = flag_value(&args, "--min-rps").and_then(|s| s.parse().ok());
            let pipeline: usize = flag_value(&args, "--pipeline")
                .and_then(|s| s.parse().ok())
                .unwrap_or(16)
                .max(1);
            let catalog: &'static _ = Box::leak(Box::new(tpcds::catalog_sf100()));
            let mut registry = Registry::new();
            for name in &names {
                let artifact = match compile_one(&store, name, threads, false) {
                    Ok((a, _)) => a,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                match ServedQuery::from_artifact(artifact, catalog) {
                    Ok(q) => registry.insert(q),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let config = ServerConfig {
                workers: flag_value(&args, "--workers")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(4),
                queue_capacity: flag_value(&args, "--queue")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(256),
                shards: flag_value(&args, "--shards")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(4),
                max_connections: 1024,
                ..ServerConfig::default()
            };
            let (nworkers, nshards) = (config.workers, config.shards);
            let handle = match serve(registry, "127.0.0.1:0", config) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("bind: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = handle.addr;

            // Precompiled request lines + single-threaded baseline.
            let lines: Vec<String> = names
                .iter()
                .enumerate()
                .map(|(i, n)| rqp::server::request_line(i as f64, "explain", Some(n), &[], None))
                .collect();
            let baseline: Vec<String> = {
                let mut c = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("connect: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                lines
                    .iter()
                    .map(|l| {
                        let r = c.call_raw(l).expect("baseline request");
                        assert!(r.contains("\"ok\":true"), "baseline failed: {r}");
                        r
                    })
                    .collect()
            };

            // Each client pipelines `pipeline` requests per batch (one
            // write syscall, `pipeline` in-order responses) — still
            // closed-loop: nothing new is sent until the whole batch is
            // answered. Per-request latency is measured from the batch
            // send to that response's arrival.
            let batch: String = (0..pipeline)
                .map(|k| format!("{}\n", lines[k % lines.len()]))
                .collect();
            let expected: Vec<&String> =
                (0..pipeline).map(|k| &baseline[k % lines.len()]).collect();
            let obs = MetricsRegistry::new();
            let latency = obs.histogram("bench_serve.latency_us");
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(secs);
            let t0 = std::time::Instant::now();
            let (total, mismatches) = std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|_| {
                        let batch = &batch;
                        let expected = &expected;
                        let latency = latency.clone();
                        s.spawn(move || {
                            let mut c = Client::connect(addr).expect("bench client connect");
                            let (mut sent, mut bad) = (0u64, 0u64);
                            while std::time::Instant::now() < deadline {
                                let req = std::time::Instant::now();
                                c.send_batch(batch).expect("bench batch write");
                                for want in expected {
                                    let r = c.read_response().expect("bench response");
                                    latency.observe(req.elapsed().as_micros() as f64);
                                    if &r != *want {
                                        bad += 1;
                                    }
                                    sent += 1;
                                }
                            }
                            (sent, bad)
                        })
                    })
                    .collect();
                handles.into_iter().fold((0u64, 0u64), |acc, h| {
                    let (sent, bad) = h.join().expect("bench client");
                    (acc.0 + sent, acc.1 + bad)
                })
            });
            let elapsed = t0.elapsed().as_secs_f64();
            handle.stop();

            let rps = total as f64 / elapsed;
            println!(
                "bench-serve: {clients} clients x {elapsed:.2}s over {} (explain, pipeline {pipeline}), {nworkers} workers / {nshards} shards",
                names.join(", ")
            );
            println!("  requests        {total}");
            println!("  throughput      {rps:.0} req/s");
            println!("  p50 latency     {:.0} us", latency.quantile(0.50));
            println!("  p99 latency     {:.0} us", latency.quantile(0.99));
            println!("  max latency     {:.0} us", latency.max());
            if mismatches > 0 {
                eprintln!(
                    "  DETERMINISM VIOLATION: {mismatches} responses differed from the baseline"
                );
                return ExitCode::FAILURE;
            }
            println!("  determinism     all {total} responses byte-equal to the baseline");
            if let Some(min) = min_rps {
                if rps < min {
                    eprintln!("  below --min-rps {min:.0}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Some("client") => {
            let (Some(addr), Some(method)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let deadline_ms: Option<u64> =
                flag_value(&args, "--deadline-ms").and_then(|s| s.parse().ok());
            let mut positional = args[3..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .cloned();
            let query = positional.next();
            let qa: Vec<f64> = positional.filter_map(|s| s.parse().ok()).collect();
            let mut client = match Client::connect(addr.as_str()) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("connect {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let line = rqp::server::request_line(1.0, method, query.as_deref(), &qa, deadline_ms);
            // Retry transient drops (including injected ones) with
            // backoff; `shutdown` is the one non-idempotent method.
            let result = if method == "shutdown" {
                client.call_raw(&line)
            } else {
                client.call_raw_retry(
                    &line,
                    &RetryPolicy::default(),
                    Some(std::time::Duration::from_secs(30)),
                )
            };
            match result {
                Ok(response) => {
                    println!("{response}");
                    if response.contains("\"ok\":true") {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("request failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("crash-victim") => crash_victim(&args),
        Some("chaos") => {
            if args.iter().any(|a| a == "--crash") {
                return chaos_crash(&args);
            }
            let name = args
                .get(1)
                .filter(|n| !n.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "2D_Q91".into());
            let seed: u64 = flag_value(&args, "--seed")
                .or_else(|| std::env::var("RQP_FAULT_SEED").ok())
                .and_then(|s| s.parse().ok())
                .unwrap_or(42);
            let rate: f64 = flag_value(&args, "--rate")
                .or_else(|| std::env::var("RQP_FAULT_RATE").ok())
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.1);
            if !(0.0..=0.5).contains(&rate) {
                eprintln!("--rate must be in [0, 0.5] for the transient sweep (got {rate})");
                return ExitCode::FAILURE;
            }
            let Some(bench) = find_query(&name) else {
                eprintln!("unknown query {name}; try `rqp list`");
                return ExitCode::FAILURE;
            };
            let exp = Experiment::build(tpcds::catalog_sf100(), bench, EnumerationMode::LeftDeep);
            let opt = exp.optimizer();
            let grid = exp.surface.grid();
            let d = exp.bench.query.ndims();
            let bound = rqp::core::spillbound_guarantee(d);
            println!(
                "chaos sweep on {name}: seed {seed}, transient fault rate {rate}, \
                 {} locations, MSO bound {bound}",
                exp.surface.len()
            );

            // Per-location plan: the seed is salted with the location and
            // the algorithm so every (point, algo) pair sees an
            // independent but fully reproducible fault stream.
            let point_plan = |qa: usize, salt: u64| {
                FaultPlan::new(seed ^ (qa as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt)
                    .with_site(FaultSite::OracleSpill, rate)
                    .with_site(FaultSite::OracleFull, rate)
            };
            let mut sb = SpillBound::new(&exp.surface, &opt, 2.0);
            let mut ab = AlignedBound::new(&exp.surface, &opt, 2.0);
            let mut faults = 0u64;
            let mut retries = 0u64;
            let mut wasted = 0.0f64;
            let mut worst_sb = 0.0f64;
            let mut worst_ab = 0.0f64;
            let mut violations = 0usize;
            for qa in 0..exp.surface.len() {
                let opt_cost = exp.surface.opt_cost(qa);
                for (label, salt) in [("SB", 1u64), ("AB", 2u64)] {
                    let plan = point_plan(qa, salt);
                    let inner = CostOracle::at_grid(&opt, grid, qa);
                    let mut oracle = FaultyOracle::new(inner, &plan);
                    let res = match label {
                        "SB" => sb.run(&mut oracle),
                        _ => ab.run(&mut oracle),
                    };
                    let stats = oracle.stats();
                    faults += stats.faults_injected;
                    retries += stats.retries;
                    wasted += stats.wasted_cost;
                    match res {
                        Ok(report) => {
                            let sub = report.sub_optimality(opt_cost);
                            let worst = if label == "SB" {
                                &mut worst_sb
                            } else {
                                &mut worst_ab
                            };
                            if sub > *worst {
                                *worst = sub;
                            }
                            if sub > bound * (1.0 + 1e-9) {
                                violations += 1;
                                eprintln!(
                                    "VIOLATION: {label} at location {qa}: \
                                     sub-optimality {sub:.3} exceeds the MSO bound {bound}"
                                );
                            }
                        }
                        Err(e) => {
                            violations += 1;
                            eprintln!("VIOLATION: {label} at location {qa}: {e}");
                        }
                    }
                }
            }

            // Determinism: the same seed must replay to bit-identical
            // results, fault stream included.
            let qa0 = exp.surface.len() / 2;
            let mut replay = || {
                let plan = point_plan(qa0, 1);
                let inner = CostOracle::at_grid(&opt, grid, qa0);
                let mut oracle = FaultyOracle::new(inner, &plan);
                let outcome = sb.run(&mut oracle).map(|r| r.total_cost.to_bits()).ok();
                (
                    outcome,
                    oracle.stats().faults_injected,
                    oracle.stats().retries,
                )
            };
            let (first, second) = (replay(), replay());
            if first != second {
                violations += 1;
                eprintln!("VIOLATION: replay with seed {seed} diverged: {first:?} vs {second:?}");
            }

            // Persistent faults: every probe fails, so discovery must
            // surface a typed error quickly — never hang or panic.
            let plan = FaultPlan::new(seed)
                .with_site(FaultSite::OracleSpill, 1.0)
                .with_site(FaultSite::OracleFull, 1.0);
            let inner = CostOracle::at_grid(&opt, grid, qa0);
            let mut oracle = FaultyOracle::new(inner, &plan);
            let t0 = std::time::Instant::now();
            match sb.run(&mut oracle) {
                Err(RqpError::Fault(msg)) => println!(
                    "persistent faults: typed error in {:.1}ms ({msg})",
                    t0.elapsed().as_secs_f64() * 1e3
                ),
                Err(e) => {
                    violations += 1;
                    eprintln!("VIOLATION: persistent faults surfaced as `{e}` (expected a fault)");
                }
                Ok(_) => {
                    violations += 1;
                    eprintln!("VIOLATION: persistent faults still produced a completed run");
                }
            }

            // Page-level fault sites over the paged backend: transient
            // torn writes / failed pins / checksum mismatches must be
            // absorbed with bit-identical replay and a preserved MSO
            // bound; a persistent pin fault must surface as a typed
            // error. Output lines are stable for CI grepping.
            {
                use rqp::ess::EssSurface;
                use rqp::executor::{Engine, PlanEngine as _};
                use rqp::runner::{measure_qa, ExecOracle};
                use rqp::storage::{PagedStore, StorageConfig};

                let catalog = tpcds::catalog(0.1);
                let bench2 = q91_with_dims(&catalog, 2);
                let query = &bench2.query;
                let spec = rqp::workloads::executable_genspec_with_errors(
                    &catalog,
                    query,
                    seed ^ 0xA5A5,
                    &[30.0, 10.0],
                );
                let data = rqp::catalog::DataSet::generate(&catalog, &spec).expect("generate");
                let config = StorageConfig::default().with_pool_frames(64);
                let popt = Optimizer::new(
                    &catalog,
                    query,
                    CostParams::default(),
                    EnumerationMode::LeftDeep,
                )
                .expect("valid query");
                let psurface = EssSurface::build(&popt, bench2.grid());
                // Page-level shots fire per pin / per page I/O — orders
                // of magnitude more draws than oracle calls — and only
                // escalate past the pool after FAULT_RETRIES consecutive
                // hits, so the per-call rate must stay low for the
                // retry budget to absorb every transient.
                let page_rate = (rate / 5.0).min(0.02);
                println!(
                    "paged-fault sweep: 2D_Q91 over the paged store (64 frames), \
                     sites page.torn_write/page.failed_pin/page.checksum at rate {page_rate}"
                );
                let page_plan = || {
                    Arc::new(
                        FaultPlan::new(seed ^ 0x5A5A)
                            .with_site(FaultSite::PageTornWrite, page_rate)
                            .with_site(FaultSite::PagePinFailed, page_rate)
                            .with_site(FaultSite::PageChecksum, page_rate),
                    )
                };
                let counter = |store: &PagedStore, name: &str| -> u64 {
                    store
                        .registry()
                        .snapshot()
                        .into_iter()
                        .find_map(|(n, v)| match v {
                            MetricValue::Counter(c) if n == name => Some(c),
                            _ => None,
                        })
                        .unwrap_or(0)
                };
                // Faults are armed only after materialization + qa
                // measurement so every replay sees the same pages.
                let paged_run =
                    |plan: Option<Arc<FaultPlan>>| -> (Option<(u64, u64)>, u64, u64, u64) {
                        let store =
                            PagedStore::materialize(&catalog, &data, config).expect("materialize");
                        let qa = measure_qa(&store, query);
                        store.set_faults(plan);
                        let exec = || {
                            Engine::new(&catalog, query, &store, CostParams::default())
                                .with_metrics(store.registry())
                        };
                        let (opt_plan, _) = popt.optimize_at(&qa);
                        let opt_spent = exec()
                            .run_full(&opt_plan, f64::INFINITY)
                            .map(|o| o.spent)
                            .unwrap_or(f64::NAN);
                        let mut sb = SpillBound::new(&psurface, &popt, 2.0);
                        let mut oracle = ExecOracle::new(exec(), &popt, psurface.grid());
                        let outcome = sb.run(&mut oracle).ok().map(|r| {
                            (
                                r.total_cost.to_bits(),
                                r.sub_optimality(opt_spent).to_bits(),
                            )
                        });
                        let injected = counter(&store, "storage.faults.torn_write")
                            + counter(&store, "storage.faults.failed_pin")
                            + counter(&store, "storage.faults.checksum");
                        (
                            outcome,
                            injected,
                            counter(&store, "storage.faults.retries"),
                            counter(&store, "storage.pool.evictions"),
                        )
                    };
                let first = paged_run(Some(page_plan()));
                let second = paged_run(Some(page_plan()));
                let (outcome, pfaults, pretries, pevictions) = &first;
                match outcome {
                    Some((_, sub_bits)) => {
                        let sub = f64::from_bits(*sub_bits);
                        let bound2 = rqp::core::spillbound_guarantee(2);
                        println!(
                            "paged-fault sweep: faults={pfaults} retries={pretries} \
                             evictions={pevictions} sub-optimality={sub:.2} (bound {bound2})"
                        );
                        if sub > bound2 * (1.0 + 1e-9) {
                            violations += 1;
                            eprintln!(
                                "VIOLATION: paged SB sub-optimality {sub:.3} exceeds the \
                                 MSO bound {bound2} under transient page faults"
                            );
                        }
                    }
                    None => {
                        violations += 1;
                        eprintln!(
                            "VIOLATION: transient page faults at rate {page_rate} aborted \
                             the paged SB run"
                        );
                    }
                }
                if first != second {
                    violations += 1;
                    eprintln!(
                        "VIOLATION: paged replay with seed {seed} diverged: \
                         {first:?} vs {second:?}"
                    );
                } else {
                    println!("paged-fault sweep: replay bit-identical: true");
                }
                // Persistent pin failure: typed fault, never a hang.
                let t0 = std::time::Instant::now();
                let persistent =
                    Arc::new(FaultPlan::new(seed).with_site(FaultSite::PagePinFailed, 1.0));
                match paged_run(Some(persistent)) {
                    (None, ..) => println!(
                        "paged-fault sweep: persistent page.failed_pin -> typed fault in {:.1}ms",
                        t0.elapsed().as_secs_f64() * 1e3
                    ),
                    (Some(_), ..) => {
                        violations += 1;
                        eprintln!(
                            "VIOLATION: persistent page.failed_pin still produced a completed run"
                        );
                    }
                }
            }

            // Penalty-aware selection under oracle faults: transient faults
            // during the per-candidate risk integration must be absorbed
            // with a bit-identical selection; persistent faults must
            // surface as a typed error, never a hang or a silent pick.
            {
                use rqp::core::{penalty, EvalContext, PenaltyConfig, PriorConfig};
                let choice = rqp::core::NativeChoice::compute(&exp.surface, &opt);
                let prior = rqp::core::SelectivityPrior::lognormal(
                    grid,
                    &choice.qe_sels,
                    PriorConfig::default(),
                )
                .expect("prior over the ESS grid");
                let ctx = EvalContext::new(&exp.surface, &opt);
                let cfg = PenaltyConfig::default();
                let clean =
                    penalty::select_ctx(&ctx, &prior, &cfg).expect("clean penalty-aware selection");
                let mut pa_faults = 0u64;
                let mut pa_retries = 0u64;
                let mut pa_identical = true;
                for round in 0..8u64 {
                    let pa_plan =
                        FaultPlan::new(seed ^ 0xBEEF ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                            .with_site(FaultSite::OracleFull, rate);
                    match penalty::select_ctx_faulted(
                        &ctx,
                        &prior,
                        &cfg,
                        &pa_plan,
                        &RetryPolicy::no_sleep(6),
                    ) {
                        Ok((sel, stats)) => {
                            pa_faults += stats.faults_injected;
                            pa_retries += stats.retries;
                            let identical = sel.chosen.fingerprint == clean.chosen.fingerprint
                                && sel.chosen.expected.to_bits() == clean.chosen.expected.to_bits()
                                && sel.chosen.cvar.to_bits() == clean.chosen.cvar.to_bits();
                            if !identical {
                                pa_identical = false;
                                violations += 1;
                                eprintln!(
                                    "VIOLATION: transient faults changed the penalty-aware \
                                     selection in round {round} (clean {:016x} vs faulted {:016x})",
                                    clean.chosen.fingerprint, sel.chosen.fingerprint
                                );
                            }
                        }
                        Err(e) => {
                            pa_identical = false;
                            violations += 1;
                            eprintln!(
                                "VIOLATION: transient faults at rate {rate} aborted the \
                                 penalty-aware selection in round {round}: {e}"
                            );
                        }
                    }
                }
                faults += pa_faults;
                retries += pa_retries;
                println!(
                    "penalty-aware sweep: {pa_faults} transient faults absorbed over 8 rounds \
                     ({pa_retries} retries), selection bit-identical: {pa_identical}"
                );
                let persistent = FaultPlan::new(seed).with_site(FaultSite::OracleFull, 1.0);
                let t0 = std::time::Instant::now();
                match penalty::select_ctx_faulted(
                    &ctx,
                    &prior,
                    &cfg,
                    &persistent,
                    &RetryPolicy::no_sleep(4),
                ) {
                    Err(RqpError::Fault(msg)) => println!(
                        "penalty-aware sweep: persistent faults -> typed error in {:.1}ms ({msg})",
                        t0.elapsed().as_secs_f64() * 1e3
                    ),
                    Err(e) => {
                        violations += 1;
                        eprintln!(
                            "VIOLATION: persistent faults surfaced as `{e}` during \
                             penalty-aware selection (expected a fault)"
                        );
                    }
                    Ok(_) => {
                        violations += 1;
                        eprintln!(
                            "VIOLATION: persistent faults still produced a \
                             penalty-aware selection"
                        );
                    }
                }
            }

            println!(
                "sweep: {} locations x 2 algorithms, {faults} faults injected, \
                 {retries} retries, wasted cost {wasted:.0}",
                exp.surface.len()
            );
            println!(
                "worst sub-optimality under faults: SB {worst_sb:.2}, AB {worst_ab:.2} \
                 (bound {bound})"
            );
            if violations == 0 {
                println!("chaos sweep passed: guarantees hold under rate-{rate} transient faults");
                ExitCode::SUCCESS
            } else {
                eprintln!("chaos sweep FAILED: {violations} violation(s)");
                ExitCode::FAILURE
            }
        }
        Some("trace") => {
            if args.get(1).map(String::as_str) == Some("--check") {
                let Some(path) = args.get(2) else {
                    return usage();
                };
                return check_trace_file(path);
            }
            let Some(name) = args.get(1).filter(|n| !n.starts_with("--")) else {
                return usage();
            };
            let Some(bench) = find_query(name) else {
                eprintln!("unknown query {name}; try `rqp list`");
                return ExitCode::FAILURE;
            };
            let d = bench.query.ndims();
            // Positionals after the query: optional algo, then optional qa.
            let positionals: Vec<&String> = args[2..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            let (algo, qa_args) = match positionals.first() {
                Some(first) if first.parse::<f64>().is_err() => (first.as_str(), &positionals[1..]),
                _ => ("sb", &positionals[..]),
            };
            if !matches!(algo, "sb" | "ab" | "pb" | "pa") {
                eprintln!("unknown algorithm {algo} (trace supports sb|ab|pb|pa)");
                return usage();
            }
            let qa: Vec<f64> = if qa_args.is_empty() {
                vec![1e-3; d]
            } else {
                let parsed: Option<Vec<f64>> = qa_args.iter().map(|s| s.parse().ok()).collect();
                match parsed {
                    Some(v)
                        if v.len() == d
                            && v.iter().all(|s| (0.0..=1.0).contains(s) && *s > 0.0) =>
                    {
                        v
                    }
                    _ => {
                        eprintln!("expected {d} selectivities in (0,1]");
                        return ExitCode::FAILURE;
                    }
                }
            };

            // Sinks: always keep a ring for rendering; mirror to JSONL when
            // asked via --jsonl or RQP_TRACE=jsonl:FILE.
            let ring = Arc::new(RingSink::new(1 << 20));
            let jsonl_path = flag_value(&args, "--jsonl").or_else(|| {
                std::env::var("RQP_TRACE")
                    .ok()
                    .and_then(|v| v.strip_prefix("jsonl:").map(str::to_string))
            });
            let tracer = match &jsonl_path {
                Some(path) => match JsonlSink::create(path) {
                    Ok(sink) => Tracer::to_sink(Arc::new(TeeSink::new(vec![
                        ring.clone() as Arc<dyn TraceSink>,
                        Arc::new(sink),
                    ]))),
                    Err(e) => {
                        eprintln!("cannot create trace file {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => Tracer::to_sink(ring.clone()),
            };
            let flame_path = flag_value(&args, "--flame");
            if flame_path.is_some() {
                prof::reset_profiling();
                prof::set_profiling(true);
            }

            let exp = {
                rqp::obs::span!("cli.trace.build");
                Experiment::build(tpcds::catalog_sf100(), bench, EnumerationMode::LeftDeep)
            };
            let opt = exp.optimizer();
            let grid = exp.surface.grid();
            let coords: Vec<usize> = qa
                .iter()
                .enumerate()
                .map(|(j, &s)| grid.dim(j).nearest_idx(s))
                .collect();
            let qa_idx = grid.flat(&coords);
            let opt_cost = exp.surface.opt_cost(qa_idx);
            if algo == "pa" {
                use rqp::core::{penalty, EvalContext, PenaltyConfig, PriorConfig};
                let sel = {
                    rqp::obs::span!("cli.trace.run");
                    let choice = rqp::core::NativeChoice::compute(&exp.surface, &opt);
                    let prior = rqp::core::SelectivityPrior::lognormal(
                        grid,
                        &choice.qe_sels,
                        PriorConfig::default(),
                    )
                    .expect("prior over the ESS grid");
                    let ctx = EvalContext::new(&exp.surface, &opt);
                    penalty::select_ctx_traced(&ctx, &prior, &PenaltyConfig::default(), &tracer)
                        .expect("penalty-aware selection")
                };
                tracer.flush();
                println!(
                    "trace of {name} [pa] risk integration (prior {:016x}):",
                    sel.prior_hash
                );
                render_timeline(&ring.snapshot());
                let chosen = match sel.chosen.plan_id {
                    Some(p) => format!("plan#{p}"),
                    None => format!("plan@{:08x}", sel.chosen.fingerprint),
                };
                println!(
                    "chose {chosen}: expected {:.4} (native {:.4}), CVaR {:.4} at alpha {}",
                    sel.chosen.expected, sel.native.expected, sel.chosen.cvar, sel.alpha
                );
            } else {
                let report = {
                    rqp::obs::span!("cli.trace.run");
                    match algo {
                        "sb" => {
                            let mut a = SpillBound::new(&exp.surface, &opt, 2.0);
                            a.set_tracer(tracer.clone());
                            let mut o = CostOracle::at_grid(&opt, grid, qa_idx);
                            a.run(&mut o).expect("discovery completes")
                        }
                        "ab" => {
                            let mut a = AlignedBound::new(&exp.surface, &opt, 2.0);
                            a.set_tracer(tracer.clone());
                            let mut o = CostOracle::at_grid(&opt, grid, qa_idx);
                            a.run(&mut o).expect("discovery completes")
                        }
                        _ => {
                            let mut a = PlanBouquet::new(&exp.surface, &opt, 2.0, 0.2);
                            a.set_tracer(tracer.clone());
                            let mut o = CostOracle::at_grid(&opt, grid, qa_idx);
                            a.run(&mut o).expect("discovery completes")
                        }
                    }
                };
                tracer.flush();

                println!("trace of {name} [{algo}] at qa {qa:?} (grid location {qa_idx}):");
                render_timeline(&ring.snapshot());
                println!(
                    "sub-optimality {:.2} vs optimal {:.0} (MSO bound {})",
                    report.sub_optimality(opt_cost),
                    opt_cost,
                    rqp::core::spillbound_guarantee(d)
                );
            }
            if let Some(path) = &jsonl_path {
                println!("event stream mirrored to {path}");
            }
            if let Some(path) = flame_path {
                prof::set_profiling(false);
                let folded = prof::folded_stacks();
                if let Err(e) = std::fs::write(&path, &folded) {
                    eprintln!("cannot write folded stacks to {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "folded stacks ({} frames) written to {path} — render with \
                     `inferno-flamegraph < {path} > flame.svg`",
                    folded.lines().count()
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
