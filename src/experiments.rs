//! Shared experiment harness for the benchmark binaries.
//!
//! Each `benches/` target regenerates one table or figure of the paper;
//! they all share this plumbing: building the POSP surface for a workload
//! query, computing guarantees and exhaustive empirical statistics for
//! every algorithm, and persisting machine-readable results under
//! `target/experiments/` (the source for `EXPERIMENTS.md`).

use rqp_artifacts::{CompiledArtifact, PenaltySummary};
use rqp_catalog::Catalog;
use rqp_core::eval::{
    evaluate_alignedbound_parallel, evaluate_native_ctx, evaluate_penaltyaware_parallel,
    evaluate_planbouquet_parallel, evaluate_spillbound_parallel,
};
use rqp_core::{
    penalty, EvalContext, NativeChoice, PenaltyConfig, PenaltySelection, PlanBouquet, PriorConfig,
    SelectivityPrior,
};
use rqp_ess::EssSurface;
use rqp_optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp_workloads::BenchQuery;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Worker threads for parallel evaluation, from the `RQP_THREADS`
/// environment variable (defaults to the machine's parallelism).
pub use rqp_common::env_threads;

/// A workload query compiled against its catalog, with the POSP surface
/// built.
pub struct Experiment {
    /// The catalog the query runs over.
    pub catalog: Box<Catalog>,
    /// The benchmark configuration.
    pub bench: BenchQuery,
    /// The optimal cost surface over the configured grid.
    pub surface: EssSurface,
    /// Seconds spent building the surface (the paper's "preprocessing
    /// overhead").
    pub build_secs: f64,
}

impl Experiment {
    /// Sweeps the optimizer over the query's grid and records the surface.
    pub fn build(catalog: Catalog, bench: BenchQuery, mode: EnumerationMode) -> Self {
        let catalog = Box::new(catalog);
        let start = Instant::now();
        let surface = {
            let opt = Optimizer::new(&catalog, &bench.query, CostParams::default(), mode)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.query.name));
            EssSurface::build(&opt, bench.grid())
        };
        let build_secs = start.elapsed().as_secs_f64();
        Self {
            catalog,
            bench,
            surface,
            build_secs,
        }
    }

    /// A fresh optimizer bound to this experiment's catalog and query.
    pub fn optimizer(&self) -> Optimizer<'_> {
        Optimizer::new(
            &self.catalog,
            &self.bench.query,
            CostParams::default(),
            EnumerationMode::LeftDeep,
        )
        .expect("validated at build")
    }
}

/// Full comparison of one query across algorithms — the data behind
/// Figs. 8, 10, 11, 13 and Table 4.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct ComparisonRow {
    /// Query name (`xD_Qz`).
    pub name: String,
    /// Number of epps `D`.
    pub d: usize,
    /// Post-anorexic-reduction maximum contour density.
    pub rho_red: usize,
    /// PlanBouquet guarantee `4(1+λ)ρ_red` (behavioral).
    pub msog_pb: f64,
    /// SpillBound guarantee `D²+3D` (structural).
    pub msog_sb: f64,
    /// AlignedBound guarantee lower end `2D+2`.
    pub msog_ab_lower: f64,
    /// Empirical MSO of PlanBouquet.
    pub msoe_pb: f64,
    /// Empirical MSO of SpillBound.
    pub msoe_sb: f64,
    /// Empirical MSO of AlignedBound.
    pub msoe_ab: f64,
    /// Average sub-optimality of PlanBouquet.
    pub aso_pb: f64,
    /// Average sub-optimality of SpillBound.
    pub aso_sb: f64,
    /// Average sub-optimality of AlignedBound.
    pub aso_ab: f64,
    /// Empirical MSO of the native optimizer (fixed estimate).
    pub msoe_native: f64,
    /// Average sub-optimality of the native optimizer (uniform prior).
    pub aso_native: f64,
    /// Empirical MSO of the penalty-aware single-plan strategy.
    pub msoe_pa: f64,
    /// Average sub-optimality of the penalty-aware strategy (uniform).
    pub aso_pa: f64,
    /// Prior-weighted ASO (expected penalty) of the penalty-aware
    /// choice under the seeded selectivity-error prior.
    pub aso_prior_pa: f64,
    /// Prior-weighted ASO of the native plan under the same prior —
    /// `aso_prior_pa <= aso_prior_native` by construction (the fig14
    /// gate).
    pub aso_prior_native: f64,
    /// CVaR (alpha = 0.9) of the penalty-aware choice under the prior.
    pub pa_cvar: f64,
    /// Maximum AlignedBound part penalty observed (Table 4).
    pub ab_max_penalty: f64,
    /// Surface preprocessing seconds.
    pub build_secs: f64,
}

/// Runs the complete per-query comparison (all four algorithms,
/// exhaustive over the grid) with `RQP_THREADS` worker threads.
pub fn compare(exp: &Experiment, ratio: f64, lambda: f64) -> ComparisonRow {
    compare_with_threads(exp, ratio, lambda, env_threads())
}

/// [`compare`] with an explicit thread count. All four algorithms share a
/// single plan×location cost matrix ([`EvalContext`]); the matrix build
/// and the per-location sweeps both fan out across `threads` workers, and
/// the results are bit-equal to a sequential run.
pub fn compare_with_threads(
    exp: &Experiment,
    ratio: f64,
    lambda: f64,
    threads: usize,
) -> ComparisonRow {
    let opt = exp.optimizer();
    let d = exp.bench.query.ndims();
    let pb = PlanBouquet::new(&exp.surface, &opt, ratio, lambda);
    let rho_red = pb.rho_red();
    let msog_pb = pb.mso_guarantee();
    drop(pb);
    let ctx = EvalContext::with_threads(&exp.surface, &opt, threads);
    let pb_stats = evaluate_planbouquet_parallel(&ctx, ratio, lambda, threads)
        .unwrap_or_else(|e| panic!("{}: PB evaluation: {e}", exp.bench.query.name));
    let sb_stats = evaluate_spillbound_parallel(&ctx, ratio, threads)
        .unwrap_or_else(|e| panic!("{}: SB evaluation: {e}", exp.bench.query.name));
    let (ab_stats, ab_max_penalty) = evaluate_alignedbound_parallel(&ctx, ratio, threads)
        .unwrap_or_else(|e| panic!("{}: AB evaluation: {e}", exp.bench.query.name));
    let native = evaluate_native_ctx(&ctx)
        .unwrap_or_else(|e| panic!("{}: native evaluation: {e}", exp.bench.query.name));
    let (pa_stats, pa_sel) = {
        let choice = NativeChoice::compute(&exp.surface, &opt);
        let prior = SelectivityPrior::lognormal(
            exp.surface.grid(),
            &choice.qe_sels,
            PriorConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{}: penalty prior: {e}", exp.bench.query.name));
        evaluate_penaltyaware_parallel(&ctx, &prior, &PenaltyConfig::default(), threads)
            .unwrap_or_else(|e| panic!("{}: PA evaluation: {e}", exp.bench.query.name))
    };
    ComparisonRow {
        name: exp.bench.query.name.clone(),
        d,
        rho_red,
        msog_pb,
        msog_sb: rqp_core::spillbound_guarantee(d),
        msog_ab_lower: rqp_core::aligned_guarantee_lower(d),
        msoe_pb: pb_stats.mso,
        msoe_sb: sb_stats.mso,
        msoe_ab: ab_stats.mso,
        aso_pb: pb_stats.aso,
        aso_sb: sb_stats.aso,
        aso_ab: ab_stats.aso,
        msoe_native: native.mso,
        aso_native: native.aso,
        msoe_pa: pa_stats.mso,
        aso_pa: pa_stats.aso,
        aso_prior_pa: pa_sel.chosen.expected,
        aso_prior_native: pa_sel.native.expected,
        pa_cvar: pa_sel.chosen.cvar,
        ab_max_penalty,
        build_secs: exp.build_secs,
    }
}

/// Runs the offline penalty-aware selection for a compiled artifact and
/// packages it as the persistable [`PenaltySummary`]. The prior is
/// centered on the native optimizer's estimated location
/// ([`NativeChoice::qe_sels`]) — the same construction the server uses
/// when it re-verifies a loaded artifact, so the compile-time and
/// serve-time selections are bit-comparable.
pub fn penalty_summary(
    artifact: &CompiledArtifact,
    opt: &Optimizer<'_>,
    prior_config: PriorConfig,
    cfg: &PenaltyConfig,
) -> rqp_common::Result<(PenaltySummary, PenaltySelection)> {
    let choice = NativeChoice::compute(&artifact.surface, opt);
    let prior =
        SelectivityPrior::lognormal(artifact.surface.grid(), &choice.qe_sels, prior_config)?;
    let ctx = EvalContext::from_parts(&artifact.surface, opt, artifact.matrix.clone())?;
    let sel = penalty::select_ctx(&ctx, &prior, cfg)?;
    let summary = PenaltySummary {
        prior_seed: prior_config.seed,
        prior_sigma: prior_config.sigma,
        prior_jitter: prior_config.jitter,
        alpha: sel.alpha,
        prior_hash: format!("{:016x}", sel.prior_hash),
        chosen_plan: sel.chosen.plan_id,
        chosen_fingerprint: format!("{:016x}", sel.chosen.fingerprint),
        expected: sel.chosen.expected,
        cvar: sel.chosen.cvar,
        native_expected: sel.native.expected,
    };
    Ok((summary, sel))
}

/// Sequential-vs-parallel wall-clock comparison for one query's
/// exhaustive evaluation (matrix build + PB/SB/AB/native sweeps).
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct SpeedupRow {
    /// Query name.
    pub name: String,
    /// Worker threads used for the parallel run.
    pub threads: usize,
    /// Wall-clock seconds of the seed's evaluation path (recost per
    /// location, no shared matrix, single-threaded).
    pub seed_secs: f64,
    /// Wall-clock seconds of the single-threaded cached evaluation.
    pub seq_secs: f64,
    /// Wall-clock seconds of the `threads`-worker cached evaluation.
    pub par_secs: f64,
    /// `seq_secs / par_secs` (thread scaling alone).
    pub speedup: f64,
    /// `seed_secs / par_secs` (shared matrix + memoization + threads).
    pub speedup_vs_seed: f64,
}

/// Times the full four-algorithm evaluation of `exp` sequentially and
/// with `threads` workers, panicking if the two disagree bit-for-bit on
/// any reported statistic. The returned row is what the fig10–fig13 and
/// micro harnesses print as their "parallel evaluation" section.
pub fn measure_speedup(exp: &Experiment, ratio: f64, lambda: f64, threads: usize) -> SpeedupRow {
    // The seed's evaluation path: one full recost (or spill binary search
    // with per-probe recosting) per algorithm per grid location.
    let opt = exp.optimizer();
    let ts = Instant::now();
    let seed_pb = rqp_core::eval::evaluate_planbouquet(&exp.surface, &opt, ratio, lambda)
        .unwrap_or_else(|e| panic!("{}: seed PB evaluation: {e}", exp.bench.query.name));
    let seed_sb = rqp_core::eval::evaluate_spillbound(&exp.surface, &opt, ratio)
        .unwrap_or_else(|e| panic!("{}: seed SB evaluation: {e}", exp.bench.query.name));
    let (seed_ab, _) = rqp_core::eval::evaluate_alignedbound(&exp.surface, &opt, ratio)
        .unwrap_or_else(|e| panic!("{}: seed AB evaluation: {e}", exp.bench.query.name));
    let _ = rqp_core::eval::evaluate_native(&exp.surface, &opt)
        .unwrap_or_else(|e| panic!("{}: seed native evaluation: {e}", exp.bench.query.name));
    let (seed_pa, _) = {
        let choice = NativeChoice::compute(&exp.surface, &opt);
        let prior = SelectivityPrior::lognormal(
            exp.surface.grid(),
            &choice.qe_sels,
            PriorConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{}: seed penalty prior: {e}", exp.bench.query.name));
        rqp_core::eval::evaluate_penaltyaware(&exp.surface, &opt, &prior, &PenaltyConfig::default())
            .unwrap_or_else(|e| panic!("{}: seed PA evaluation: {e}", exp.bench.query.name))
    };
    let seed_secs = ts.elapsed().as_secs_f64();
    drop(opt);

    let t0 = Instant::now();
    let seq = compare_with_threads(exp, ratio, lambda, 1);
    let seq_secs = t0.elapsed().as_secs_f64();
    for (label, a, b) in [
        ("SB MSOe", seed_sb.mso, seq.msoe_sb),
        ("AB MSOe", seed_ab.mso, seq.msoe_ab),
        ("PB MSOe", seed_pb.mso, seq.msoe_pb),
        ("PA MSOe", seed_pa.mso, seq.msoe_pa),
    ] {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{}: {label} diverged between the seed path ({a}) and the cached path ({b})",
            exp.bench.query.name
        );
    }
    let t1 = Instant::now();
    let par = compare_with_threads(exp, ratio, lambda, threads);
    let par_secs = t1.elapsed().as_secs_f64();
    for (label, s, p) in [
        ("PB MSOe", seq.msoe_pb, par.msoe_pb),
        ("SB MSOe", seq.msoe_sb, par.msoe_sb),
        ("AB MSOe", seq.msoe_ab, par.msoe_ab),
        ("PB ASO", seq.aso_pb, par.aso_pb),
        ("SB ASO", seq.aso_sb, par.aso_sb),
        ("AB ASO", seq.aso_ab, par.aso_ab),
        ("native MSOe", seq.msoe_native, par.msoe_native),
        ("native ASO", seq.aso_native, par.aso_native),
        ("PA MSOe", seq.msoe_pa, par.msoe_pa),
        ("PA ASO", seq.aso_pa, par.aso_pa),
        ("PA prior-ASO", seq.aso_prior_pa, par.aso_prior_pa),
        (
            "native prior-ASO",
            seq.aso_prior_native,
            par.aso_prior_native,
        ),
        ("PA CVaR", seq.pa_cvar, par.pa_cvar),
        ("AB max ε", seq.ab_max_penalty, par.ab_max_penalty),
    ] {
        assert_eq!(
            s.to_bits(),
            p.to_bits(),
            "{}: {label} diverged between sequential ({s}) and {threads}-thread ({p}) runs",
            exp.bench.query.name
        );
    }
    SpeedupRow {
        name: exp.bench.query.name.clone(),
        threads,
        seed_secs,
        seq_secs,
        par_secs,
        speedup: seq_secs / par_secs,
        speedup_vs_seed: seed_secs / par_secs,
    }
}

/// Prints a [`SpeedupRow`] in the shared harness format.
pub fn print_speedup(row: &SpeedupRow) {
    println!(
        "[parallel evaluation] {}: seed path {:.3}s, cached sequential {:.3}s, {} threads \
         {:.3}s -> {:.2}x vs cached sequential, {:.2}x vs the seed path \
         (bit-equal results; set RQP_THREADS to change the worker count)",
        row.name,
        row.seed_secs,
        row.seq_secs,
        row.threads,
        row.par_secs,
        row.speedup,
        row.speedup_vs_seed
    );
}

/// Worker-thread count for a harness or CLI invocation, resolved in
/// priority order: a `--threads N` command-line override, then the
/// `RQP_THREADS` environment knob, then `default`. Every bench harness
/// and the `rqp` CLI share this one resolution (it used to be
/// copy-pasted per harness).
pub fn harness_threads(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        if let Some(n) = args.get(pos + 1).and_then(|s| s.parse::<usize>().ok()) {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("--threads expects a positive integer; falling back to RQP_THREADS/default");
    }
    if std::env::var_os("RQP_THREADS").is_some() {
        env_threads()
    } else {
        default
    }
}

/// The standard "parallel evaluation" trailer shared by the figure
/// harnesses: measures the sequential-vs-parallel speedup of the full
/// four-algorithm sweep on `dD_Q91`, prints it, and persists it as
/// `target/experiments/<json_name>.json`. The worker count comes from
/// [`harness_threads`] (`--threads N`, then `RQP_THREADS`, then 4).
pub fn speedup_section(d: usize, json_name: &str) -> SpeedupRow {
    let threads = harness_threads(4);
    let catalog = rqp_catalog::tpcds::catalog_sf100();
    let bench = rqp_workloads::q91_with_dims(&catalog, d);
    let exp = Experiment::build(catalog, bench, EnumerationMode::LeftDeep);
    let row = measure_speedup(&exp, 2.0, 0.2, threads);
    print_speedup(&row);
    write_json(json_name, &row);
    row
}

/// Directory where benchmark harnesses persist their results.
pub fn output_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Persists a result as pretty JSON under `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = output_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize experiment");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("[saved {}]", path.display());
}

/// Prints an aligned plain-text table (benchmark harness output format).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Rounds to a fixed number of decimals for table display.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Re-export of [`rqp_core::spillbound_guarantee_ratio`] for the bench
/// harnesses.
pub use rqp_core::spillbound_guarantee_ratio;

/// Computes (or loads from `target/experiments/suite_comparison.json`) the
/// full-suite comparison. Several figure harnesses share this data; the
/// first one to run pays the cost.
pub fn suite_comparison_cached() -> Vec<ComparisonRow> {
    let path = output_dir().join("suite_comparison.json");
    // The cache is keyed by nothing but its presence: after changing any
    // algorithm or workload, delete target/experiments/ or set
    // RQP_FORCE_RECOMPUTE=1 to avoid silently reusing stale numbers.
    let force = std::env::var_os("RQP_FORCE_RECOMPUTE").is_some();
    if force {
        let _ = std::fs::remove_file(&path);
    }
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(rows) = serde_json::from_str::<Vec<ComparisonRow>>(&text) {
            let expected = rqp_workloads::paper_suite(&rqp_catalog::tpcds::catalog_sf100()).len();
            if rows.len() == expected {
                println!("[reusing cached {}]", path.display());
                return rows;
            }
        }
    }
    let catalog = rqp_catalog::tpcds::catalog_sf100();
    let suite = rqp_workloads::paper_suite(&catalog);
    let threads = env_threads();
    let mut rows = Vec::with_capacity(suite.len());
    for bench in suite {
        let name = bench.query.name.clone();
        eprintln!("[evaluating {name} with {threads} thread(s) ...]");
        let exp = Experiment::build(
            rqp_catalog::tpcds::catalog_sf100(),
            bench,
            EnumerationMode::LeftDeep,
        );
        rows.push(compare(&exp, 2.0, 0.2));
    }
    write_json("suite_comparison", &rows);
    rows
}

/// Renders the suite comparison as a markdown report (the generated
/// companion to `EXPERIMENTS.md`), written to
/// `target/experiments/report.md` by [`write_report`].
pub fn render_report(rows: &[ComparisonRow]) -> String {
    use std::fmt::Write as _;
    let mut md = String::from(
        "# rqp experiment report\n\n\
         Generated from the exhaustive suite comparison (MSO guarantees, \
         empirical MSO/ASO, AlignedBound penalties).\n\n\
         | query | D | ρ_red | PB MSOg | SB MSOg | PB MSOe | SB MSOe | AB MSOe | 2D+2 | PB ASO | SB ASO | AB ASO | AB max ε | native MSOe |\n\
         |---|---|---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {:.1} | {:.0} | {:.1} | {:.1} | {:.1} | {:.0} | {:.2} | {:.2} | {:.2} | {:.2} | {:.3e} |",
            r.name,
            r.d,
            r.rho_red,
            r.msog_pb,
            r.msog_sb,
            r.msoe_pb,
            r.msoe_sb,
            r.msoe_ab,
            r.msog_ab_lower,
            r.aso_pb,
            r.aso_sb,
            r.aso_ab,
            r.ab_max_penalty,
            r.msoe_native,
        );
    }
    let sb_wins = rows.iter().filter(|r| r.msoe_sb <= r.msoe_pb).count();
    let ab_wins = rows.iter().filter(|r| r.msoe_ab <= r.msoe_sb).count();
    let _ = write!(
        md,
        "\n- SpillBound ≤ PlanBouquet (MSOe): {sb_wins}/{} queries\n\
         - AlignedBound ≤ SpillBound (MSOe): {ab_wins}/{} queries\n\
         - every SB MSOe within its D²+3D guarantee: {}\n",
        rows.len(),
        rows.len(),
        rows.iter().all(|r| r.msoe_sb <= r.msog_sb * (1.0 + 1e-9)),
    );
    md
}

/// Writes [`render_report`] output to `target/experiments/report.md`.
pub fn write_report(rows: &[ComparisonRow]) {
    let path = output_dir().join("report.md");
    std::fs::write(&path, render_report(rows))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("[saved {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, msoe_sb: f64, msoe_pb: f64) -> ComparisonRow {
        ComparisonRow {
            name: name.into(),
            d: 3,
            rho_red: 5,
            msog_pb: 24.0,
            msog_sb: 18.0,
            msog_ab_lower: 8.0,
            msoe_pb,
            msoe_sb,
            msoe_ab: msoe_sb * 0.9,
            aso_pb: 4.0,
            aso_sb: 2.0,
            aso_ab: 1.9,
            msoe_native: 1e6,
            aso_native: 9.0e5,
            msoe_pa: 1.5,
            aso_pa: 1.2,
            aso_prior_pa: 1.1,
            aso_prior_native: 1.3,
            pa_cvar: 2.0,
            ab_max_penalty: 2.5,
            build_secs: 0.1,
        }
    }

    #[test]
    fn report_contains_rows_and_verdicts() {
        let rows = vec![row("3D_QA", 10.0, 20.0), row("3D_QB", 12.0, 15.0)];
        let md = render_report(&rows);
        assert!(md.contains("| 3D_QA |"));
        assert!(md.contains("| 3D_QB |"));
        assert!(md.contains("SpillBound ≤ PlanBouquet (MSOe): 2/2"));
        assert!(md.contains("within its D²+3D guarantee: true"));
    }

    #[test]
    fn ratio_guarantee_reexport_consistent() {
        assert_eq!(spillbound_guarantee_ratio(2, 2.0), 10.0);
    }

    #[test]
    fn print_table_is_well_formed() {
        // smoke: no panic on ragged-ish content, alignment computed
        print_table(
            "t",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
