//! # rqp — Platform-Independent Robust Query Processing
//!
//! A from-scratch Rust reproduction of *"Platform-Independent Robust Query
//! Processing"* (Karthik, Haritsa, Kenkre, Pandit, Krishnan; ICDE'16 /
//! TKDE'19): the **SpillBound** and **AlignedBound** selectivity-discovery
//! algorithms with provable Maximum Sub-Optimality (MSO) guarantees, the
//! **PlanBouquet** baseline, and every substrate they need — a cost-based
//! optimizer with selectivity injection, a budgeted/spill-capable
//! execution engine, and the error-prone selectivity space (ESS)
//! machinery.
//!
//! ## Quickstart
//!
//! ```
//! use rqp::catalog::tpcds;
//! use rqp::common::MultiGrid;
//! use rqp::core::{CostOracle, SpillBound};
//! use rqp::ess::EssSurface;
//! use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
//! use rqp::workloads;
//!
//! // 1. Catalog + query: TPC-DS Q91 with two error-prone joins.
//! let catalog = tpcds::catalog_sf100();
//! let bench = workloads::q91_with_dims(&catalog, 2);
//!
//! // 2. Optimizer with selectivity injection, and the POSP surface.
//! let opt = Optimizer::new(
//!     &catalog, &bench.query, CostParams::default(), EnumerationMode::LeftDeep,
//! ).unwrap();
//! let grid = MultiGrid::uniform(2, 1e-6, 8);
//! let surface = EssSurface::build(&opt, grid);
//!
//! // 3. Run SpillBound against a hidden true location.
//! let mut sb = SpillBound::new(&surface, &opt, 2.0);
//! let qa = surface.grid().flat(&[5, 3]);
//! let mut oracle = CostOracle::at_grid(&opt, surface.grid(), qa);
//! let report = sb.run(&mut oracle).unwrap();
//! assert!(report.completed);
//! assert!(report.sub_optimality(surface.opt_cost(qa)) <= sb.mso_guarantee());
//! ```

pub use rqp_artifacts as artifacts;
pub use rqp_catalog as catalog;
pub use rqp_common as common;
pub use rqp_core as core;
pub use rqp_ess as ess;
pub use rqp_executor as executor;
pub use rqp_faults as faults;
pub use rqp_obs as obs;
pub use rqp_optimizer as optimizer;
pub use rqp_server as server;
pub use rqp_storage as storage;
pub use rqp_workloads as workloads;

pub mod experiments;
pub mod runner;
