//! Executor-backed execution oracle for wall-clock experiments (§6.3).
//!
//! Where [`rqp_core::CostOracle`] decides budgeted executions analytically,
//! [`ExecOracle`] actually runs them on the Volcano engine over
//! materialized synthetic data, with real cost metering, real spilled
//! subtrees, and selectivities observed from tuple counts. Wall-clock
//! durations are recorded per execution, which is how the paper's Table 3
//! drill-down is regenerated.

use rqp_common::{cost_le, Cost, MultiGrid, Result, RqpError, Selectivity, EPS};
use rqp_core::{ExecutionOracle, FullOutcome, SpillOutcome};
use rqp_executor::{Executor, NodeObservation, PlanEngine};
use rqp_faults::RetryPolicy;
use rqp_optimizer::{Optimizer, PlanId, PlanNode, PredicateKind, Sels};
use std::time::{Duration, Instant};

/// An [`ExecutionOracle`] backed by real plan executions.
///
/// Generic over the [`PlanEngine`] driving the runs (row engine, batch
/// engine, or the batch-first [`rqp_executor::Engine`] dispatcher);
/// engines are metering-bit-compatible, so the choice affects wall-clock
/// time but never a discovery report.
pub struct ExecOracle<'a, E = Executor<'a>> {
    executor: E,
    opt: &'a Optimizer<'a>,
    grid: &'a MultiGrid,
    /// Best current knowledge of every predicate's selectivity: base
    /// estimates, overwritten by exactly-learnt values. Used to divide
    /// residual predicates out of combined node observations and to invert
    /// subtree costs on timeouts.
    known: Sels,
    /// Retry policy for transient (injected) executor faults on the
    /// fallible `try_*` path.
    retry: RetryPolicy,
    /// Transient faults absorbed by retries.
    pub retries: u64,
    /// Wall-clock duration of each oracle call, in call order (aligned
    /// with the discovery report's execution records).
    pub timings: Vec<Duration>,
}

impl<'a, E: PlanEngine> ExecOracle<'a, E> {
    /// Creates the oracle.
    pub fn new(executor: E, opt: &'a Optimizer<'a>, grid: &'a MultiGrid) -> Self {
        Self {
            executor,
            opt,
            grid,
            known: opt.base_sels().clone(),
            retry: RetryPolicy::default(),
            retries: 0,
            timings: Vec::new(),
        }
    }

    /// Replaces the transient-fault retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Total wall-clock time across all oracle calls.
    pub fn total_time(&self) -> Duration {
        self.timings.iter().sum()
    }

    /// Runs `call` retrying injected-fault errors with capped exponential
    /// backoff; other errors and final exhaustion propagate.
    fn retry_faults<T>(&mut self, mut call: impl FnMut(&mut E) -> Result<T>) -> Result<T> {
        let attempts = self.retry.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            match call(&mut self.executor) {
                Ok(v) => return Ok(v),
                Err(e @ RqpError::Fault(_)) => {
                    last = Some(e);
                    if attempt + 1 < attempts {
                        self.retries += 1;
                        self.retry.pause(attempt);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("loop runs at least once"))
    }

    /// Product of the *other* predicates applied at the node carrying
    /// `pred` (their selectivities are known — either non-epp or already
    /// learnt — by the spill ordering invariant).
    fn residual_product(&self, plan: &PlanNode, pred: usize) -> f64 {
        let node = plan
            .subtree_applying(pred)
            .expect("spilled plan applies the predicate");
        let preds: Vec<usize> = match node {
            PlanNode::Scan { filters, .. } => filters.clone(),
            PlanNode::Join { preds, .. } => preds.clone(),
        };
        preds
            .into_iter()
            .filter(|&p| p != pred)
            .map(|p| self.known.get(p))
            .product()
    }
}

impl<E: PlanEngine> ExecutionOracle for ExecOracle<'_, E> {
    fn spill_execute(&mut self, plan: &PlanNode, dim: usize, budget: Cost) -> SpillOutcome {
        self.try_spill_execute_id(None, plan, dim, budget)
            .unwrap_or_else(|e| panic!("spill execution failed: {e}"))
    }

    fn full_execute(&mut self, plan: &PlanNode, budget: Cost) -> FullOutcome {
        self.try_full_execute_id(None, plan, budget)
            .unwrap_or_else(|e| panic!("full execution failed: {e}"))
    }

    fn try_spill_execute_id(
        &mut self,
        _pid: Option<PlanId>,
        plan: &PlanNode,
        dim: usize,
        budget: Cost,
    ) -> Result<SpillOutcome> {
        let start = Instant::now();
        let pred = self.opt.query().epps[dim];
        let run = self.retry_faults(|ex| ex.run_spill(plan, pred, budget))?;
        let outcome = if run.completed {
            let obs = run.observation.expect("completed spill has counts");
            let combined = obs.combined_selectivity();
            let residual = self.residual_product(plan, pred);
            let sel: Selectivity = match obs {
                NodeObservation::Join { .. } | NodeObservation::Scan { .. } => {
                    (combined / residual.max(EPS)).clamp(EPS, 1.0)
                }
            };
            self.known.set(pred, sel);
            SpillOutcome::Completed {
                sel,
                spent: run.spent,
            }
        } else {
            // Invert the modeled subtree cost at current knowledge: the
            // largest grid selectivity whose modeled cost fits the budget.
            // (The paper's engine infers the same bound from its calibrated
            // cost model.)
            let model = self.opt.cost_model();
            let g = self.grid.dim(dim);
            let mut probe = self.known.clone();
            let mut lo = 0usize;
            let mut hi = g.len();
            while lo < hi {
                let mid = (lo + hi) / 2;
                probe.set(pred, g.sel(mid));
                let fits = model
                    .spill_subtree_estimate(plan, pred, &probe)
                    .map(|e| cost_le(e.cost, budget))
                    .unwrap_or(false);
                if fits {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let lower_bound = if lo == 0 { 0.0 } else { g.sel(lo - 1) };
            SpillOutcome::TimedOut {
                lower_bound,
                spent: run.spent,
            }
        };
        self.timings.push(start.elapsed());
        Ok(outcome)
    }

    fn try_full_execute_id(
        &mut self,
        _pid: Option<PlanId>,
        plan: &PlanNode,
        budget: Cost,
    ) -> Result<FullOutcome> {
        let start = Instant::now();
        let out = self.retry_faults(|ex| ex.run_full(plan, budget))?;
        self.timings.push(start.elapsed());
        Ok(if out.completed {
            FullOutcome::Completed { spent: out.spent }
        } else {
            FullOutcome::TimedOut { spent: out.spent }
        })
    }
}

/// Measures the true epp selectivities of `query` in a materialized
/// dataset — the ground-truth `qa` of a wall-clock experiment.
///
/// Works over any [`rqp_executor::TableStore`] backend; both the
/// in-memory and the paged store compute these bit-identically, so a
/// wall-clock experiment's ground truth is backend-independent.
pub fn measure_qa(
    store: &dyn rqp_executor::TableStore,
    query: &rqp_optimizer::QuerySpec,
) -> Vec<Selectivity> {
    query
        .epps
        .iter()
        .map(|&p| match query.predicates[p].kind {
            PredicateKind::Join {
                left,
                left_col,
                right,
                right_col,
            } => store
                .true_join_selectivity(
                    (query.relations[left], left_col),
                    (query.relations[right], right_col),
                )
                .unwrap_or(EPS)
                .max(EPS),
            PredicateKind::FilterLe { rel, col, value } => store
                .true_le_selectivity(query.relations[rel], col, value)
                .unwrap_or(EPS)
                .max(EPS),
            PredicateKind::FilterEq { .. } => {
                unimplemented!("equality-filter epps not used by the workloads")
            }
        })
        .collect()
}
