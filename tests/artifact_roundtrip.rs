//! Property-based round-trip tests for the artifact store (rqp-artifacts):
//! compile → save → load must evaluate bit-equal to the in-memory build
//! for every algorithm (PB / SB / AB / native) across random grids, and
//! arbitrary single-byte corruption must surface as a typed error, never
//! a panic.

use proptest::prelude::*;
use rqp::artifacts::{
    compile_or_load_with, ArtifactError, ColdReason, CompiledArtifact, Provenance,
};
use rqp::catalog::{tpcds, Catalog};
use rqp::core::eval::{
    evaluate_alignedbound_parallel, evaluate_native_ctx, evaluate_planbouquet_parallel,
    evaluate_spillbound_parallel,
};
use rqp::core::{EvalContext, SubOptStats};
use rqp::faults::{FaultPlan, FaultSite};
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer, QuerySpec};
use rqp_common::MultiGrid;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

struct Fx {
    catalog: Catalog,
    query: QuerySpec,
}

// Reuse one catalog/query across proptest cases (construction dominates).
fn fx() -> &'static Fx {
    static FX: OnceLock<Fx> = OnceLock::new();
    FX.get_or_init(|| {
        let catalog = tpcds::catalog_sf100();
        let query = rqp::workloads::q91_with_dims(&catalog, 2).query;
        Fx { catalog, query }
    })
}

fn optimizer(f: &Fx) -> Optimizer<'_> {
    Optimizer::new(
        &f.catalog,
        &f.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .unwrap()
}

/// A scratch path unique to this process and call site.
fn scratch(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rqp-roundtrip-{}-{tag}-{n}.rqpa",
        std::process::id()
    ))
}

fn bit_equal(a: &SubOptStats, b: &SubOptStats) -> bool {
    a.mso.to_bits() == b.mso.to_bits()
        && a.worst_qa == b.worst_qa
        && a.subopts.len() == b.subopts.len()
        && a.subopts
            .iter()
            .zip(&b.subopts)
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    // Each case compiles a full (small) ESS; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// compile → save → load → evaluate is bit-equal to the in-memory
    /// pipeline for all four algorithms, over random grids and ratios.
    #[test]
    fn saved_artifact_evaluates_bit_equal(
        n in 5usize..9,
        min_exp in 5u32..8,
        ratio_tenths in 15u32..26,
        threads in 1usize..4,
    ) {
        let f = fx();
        let opt = optimizer(f);
        let grid = MultiGrid::uniform(2, 10f64.powi(-(min_exp as i32)), n);
        let ratio = ratio_tenths as f64 / 10.0;

        let artifact = CompiledArtifact::compile(&opt, grid, ratio, 0.2, threads);
        let path = scratch("eval");
        artifact.save(&path).unwrap();
        let loaded = CompiledArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // The loaded half runs entirely off deserialized state: its own
        // optimizer is rebuilt from the stored QuerySpec.
        let loaded_opt = Optimizer::new(
            &f.catalog,
            &loaded.query,
            CostParams::default(),
            EnumerationMode::LeftDeep,
        )
        .unwrap();
        let mem = EvalContext::from_parts(&artifact.surface, &opt, artifact.matrix.clone()).unwrap();
        let warm =
            EvalContext::from_parts(&loaded.surface, &loaded_opt, loaded.matrix.clone()).unwrap();

        let sb_m = evaluate_spillbound_parallel(&mem, ratio, threads).unwrap();
        let sb_w = evaluate_spillbound_parallel(&warm, ratio, threads).unwrap();
        prop_assert!(bit_equal(&sb_m, &sb_w), "SB diverged after round-trip");

        let (ab_m, pen_m) = evaluate_alignedbound_parallel(&mem, ratio, threads).unwrap();
        let (ab_w, pen_w) = evaluate_alignedbound_parallel(&warm, ratio, threads).unwrap();
        prop_assert!(bit_equal(&ab_m, &ab_w), "AB diverged after round-trip");
        prop_assert_eq!(pen_m.to_bits(), pen_w.to_bits());

        let pb_m = evaluate_planbouquet_parallel(&mem, ratio, 0.2, threads).unwrap();
        let pb_w = evaluate_planbouquet_parallel(&warm, ratio, 0.2, threads).unwrap();
        prop_assert!(bit_equal(&pb_m, &pb_w), "PB diverged after round-trip");

        let nat_m = evaluate_native_ctx(&mem).unwrap();
        let nat_w = evaluate_native_ctx(&warm).unwrap();
        prop_assert!(bit_equal(&nat_m, &nat_w), "native diverged after round-trip");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-byte mutation of a valid artifact either still decodes
    /// to the identical artifact (a byte the checksum ignores does not
    /// exist — so in practice: header-field typos, checksum mismatches,
    /// or truncation) or yields a typed error. It never panics.
    #[test]
    fn corrupted_bytes_never_panic(
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
        truncate_to_seed in any::<usize>(),
    ) {
        static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
        let bytes = BYTES.get_or_init(|| {
            let f = fx();
            let opt = optimizer(f);
            CompiledArtifact::compile(&opt, MultiGrid::uniform(2, 1e-5, 5), 2.0, 0.2, 1)
                .to_bytes()
        });

        // Flip one byte anywhere in the stream.
        let mut flipped = bytes.clone();
        let pos = pos_seed % flipped.len();
        flipped[pos] ^= xor;
        match CompiledArtifact::from_bytes(&flipped) {
            Ok(_) => prop_assert!(false, "corruption at byte {pos} went undetected"),
            Err(
                ArtifactError::BadHeader(_)
                | ArtifactError::BadMagic(_)
                | ArtifactError::UnsupportedVersion { .. }
                | ArtifactError::Truncated { .. }
                | ArtifactError::ChecksumMismatch { .. }
                | ArtifactError::Decode(_)
                | ArtifactError::Invalid(_),
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }

        // Truncate to an arbitrary prefix.
        let cut = truncate_to_seed % bytes.len();
        prop_assert!(
            CompiledArtifact::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes went undetected"
        );
    }
}

/// One small compiled artifact for the fault-injection tests.
fn small_artifact() -> CompiledArtifact {
    let f = fx();
    let opt = optimizer(f);
    CompiledArtifact::compile(&opt, MultiGrid::uniform(2, 1e-5, 5), 2.0, 0.2, 1)
}

/// A torn (injected short) write must error out before the atomic
/// rename: whatever was visible at the path beforehand stays visible
/// and intact, and only the `.tmp` scratch file holds the truncation.
#[test]
fn torn_write_never_exposes_a_partial_artifact() {
    let artifact = small_artifact();
    let path = scratch("torn");

    // Torn write onto an empty path: nothing becomes visible.
    let plan = FaultPlan::new(3).with_site(FaultSite::StoreSave, 1.0);
    let err = artifact.save_with(&path, Some(&plan)).unwrap_err();
    assert!(matches!(err, ArtifactError::Io(_)), "{err}");
    assert!(!path.exists(), "torn write must not surface at {path:?}");

    // Torn write over a valid artifact: the old one survives bit-equal.
    artifact.save(&path).unwrap();
    let before = std::fs::read(&path).unwrap();
    let err = artifact.save_with(&path, Some(&plan)).unwrap_err();
    assert!(matches!(err, ArtifactError::Io(_)), "{err}");
    assert_eq!(std::fs::read(&path).unwrap(), before, "artifact was torn");
    CompiledArtifact::load(&path).unwrap();

    // The truncated scratch file is where the tear landed.
    let tmp = path.with_extension("tmp");
    assert!(std::fs::metadata(&tmp).unwrap().len() < before.len() as u64);

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&tmp).ok();
}

/// A single transient read fault is retried once and the warm load
/// still succeeds.
#[test]
fn transient_load_fault_is_retried_to_a_warm_load() {
    let f = fx();
    let opt = optimizer(f);
    let grid = MultiGrid::uniform(2, 1e-5, 5);
    let path = scratch("retry");
    small_artifact().save(&path).unwrap();

    let plan = FaultPlan::new(5).with_fail_first(FaultSite::StoreLoad, 1);
    let (_, prov) = compile_or_load_with(&path, &opt, &grid, 2.0, 0.2, 1, Some(&plan)).unwrap();
    assert!(
        matches!(prov, Provenance::Warm { .. }),
        "one transient fault must not force a recompile: {prov:?}"
    );
    assert_eq!(plan.injected(FaultSite::StoreLoad), 1);

    std::fs::remove_file(&path).ok();
}

/// Persistent read faults degrade to a recompile (the store is an
/// accelerator, never a point of failure): cold provenance with a
/// `Corrupt` reason, and a usable artifact either way.
#[test]
fn persistent_load_faults_degrade_to_recompile() {
    let f = fx();
    let opt = optimizer(f);
    let grid = MultiGrid::uniform(2, 1e-5, 5);
    let path = scratch("degrade");
    small_artifact().save(&path).unwrap();

    let plan = FaultPlan::new(9).with_site(FaultSite::StoreLoad, 1.0);
    let (artifact, prov) =
        compile_or_load_with(&path, &opt, &grid, 2.0, 0.2, 1, Some(&plan)).unwrap();
    match &prov {
        Provenance::Cold {
            reason: ColdReason::Corrupt(msg),
            ..
        } => assert!(msg.contains("injected"), "unexpected reason: {msg}"),
        other => panic!("expected a cold recompile with a corrupt reason, got {other:?}"),
    }
    assert_eq!(artifact.surface.len(), 25);

    std::fs::remove_file(&path).ok();
}
