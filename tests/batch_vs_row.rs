//! The vectorized engine must be bit-compatible with the row engine.
//!
//! Budgeted execution, spill-mode runs, metered costs, and discovery
//! reports are the *observable* outputs the robustness algorithms reason
//! about; switching engines must not move a single bit of any of them.
//! Property layer: random plan shapes (all four join methods, seq/index
//! scans, both join orientations) x random budgets x both `TableStore`
//! backends produce bit-identical `ExecOutcome`s and `SpillRun`s, and so
//! do optimizer-chosen plans at random ESS locations. Edge layer: row
//! counts straddling `BATCH_SIZE`, empty and single-row tables, filter
//! selectivities of exactly 0 and 1, and budgets expiring exactly on a
//! batch edge. Fallback layer: every plan the paper suite's optimizer
//! can emit is inside the vectorized subset (the `batch.fallbacks`
//! counter stays zero), and full SB/AB discovery through the dispatching
//! [`Engine`] reproduces the row engine's reports byte for byte.

use proptest::prelude::*;
use rqp::catalog::tpcds;
use rqp::core::{AlignedBound, SpillBound};
use rqp::ess::EssSurface;
use rqp::executor::{DataStore, Engine, Executor, PlanEngine, TableStore, BATCH_SIZE};
use rqp::obs::MetricsRegistry;
use rqp::optimizer::{
    CostParams, EnumerationMode, JoinMethod, Optimizer, PlanNode, Predicate, PredicateKind,
    QuerySpec, ScanMethod,
};
use rqp::runner::ExecOracle;
use rqp::storage::{PagedStore, StorageConfig};
use rqp::workloads::{executable_genspec_with_errors, paper_suite, q91_with_dims};
use rqp_catalog::datagen::{ColumnGen, DataSet, GenSpec, TableGenSpec};
use rqp_catalog::{Catalog, Column, ColumnStats, DataType, Table};
use rqp_common::MultiGrid;
use std::sync::OnceLock;

// ---------------------------------------------------------------- fixture

/// fact(`fact_rows`, fk uniform-100 indexed, v uniform-100 indexed) ⋈
/// dim(100, serial pk indexed), filter `fact.v <= filter_le`. The indexed
/// filter column makes standalone `IndexScan` plans compilable, unlike
/// the executor's internal fixture.
fn build(fact_rows: u64, filter_le: i64) -> (Catalog, QuerySpec, DataSet) {
    let mut cat = Catalog::new();
    let fact = cat
        .add_table(Table::new(
            "fact",
            fact_rows,
            vec![
                Column::new("fk", DataType::Int, ColumnStats::uniform(100)).with_index(),
                Column::new("v", DataType::Int, ColumnStats::uniform(100)).with_index(),
            ],
        ))
        .unwrap();
    let dim = cat
        .add_table(Table::new(
            "dim",
            100,
            vec![Column::new("k", DataType::Int, ColumnStats::uniform(100)).with_index()],
        ))
        .unwrap();
    let query = QuerySpec {
        name: "batch_vs_row".into(),
        relations: vec![fact, dim],
        predicates: vec![
            Predicate {
                label: "fk=k".into(),
                kind: PredicateKind::Join {
                    left: 0,
                    left_col: 0,
                    right: 1,
                    right_col: 0,
                },
            },
            Predicate {
                label: format!("v<={filter_le}"),
                kind: PredicateKind::FilterLe {
                    rel: 0,
                    col: 1,
                    value: filter_le,
                },
            },
        ],
        epps: vec![0, 1],
    };
    let data = DataSet::generate(
        &cat,
        &GenSpec {
            seed: 23,
            tables: vec![
                TableGenSpec {
                    table: fact,
                    rows: fact_rows,
                    columns: vec![
                        ColumnGen::Uniform { domain: 100 },
                        ColumnGen::Uniform { domain: 100 },
                    ],
                },
                TableGenSpec {
                    table: dim,
                    rows: 100,
                    columns: vec![ColumnGen::Serial],
                },
            ],
        },
    )
    .unwrap();
    (cat, query, data)
}

struct Fx {
    catalog: Catalog,
    query: QuerySpec,
    mem: DataStore,
    paged: PagedStore,
}

fn fx_from(fact_rows: u64, filter_le: i64, pool_frames: usize) -> Fx {
    let (catalog, query, data) = build(fact_rows, filter_le);
    let paged = PagedStore::materialize(
        &catalog,
        &data,
        StorageConfig::default().with_pool_frames(pool_frames),
    )
    .expect("materialize");
    let mem = DataStore::new(&catalog, data);
    Fx {
        catalog,
        query,
        mem,
        paged,
    }
}

/// Shared 4000-row fixture for the property tests (built once; the
/// 16-frame pool is far smaller than the fact table's page count).
fn fx() -> &'static Fx {
    static FX: OnceLock<Fx> = OnceLock::new();
    FX.get_or_init(|| fx_from(4000, 49, 16))
}

// ------------------------------------------------------------ differential

/// Runs `plan` under `budget` on the row engine and the dispatching
/// `Engine` over both backends, asserting bit-identical full outcomes
/// and spill runs (for every predicate in `spill_preds`), zero
/// fallbacks, and mem/paged agreement within the batch engine.
fn assert_bit_identical(fx: &Fx, plan: &PlanNode, budget: f64, spill_preds: &[usize]) {
    let mut batch_spent_bits = Vec::new();
    for store in [&fx.mem as &dyn TableStore, &fx.paged as &dyn TableStore] {
        let row = Executor::new(&fx.catalog, &fx.query, store, CostParams::default());
        let reg = MetricsRegistry::new();
        let engine =
            Engine::new(&fx.catalog, &fx.query, store, CostParams::default()).with_metrics(&reg);
        let a = row.run_full(plan, budget).expect("row engine");
        let b = engine.run_full(plan, budget).expect("batch engine");
        assert_eq!(a.completed, b.completed, "completion diverged");
        assert_eq!(a.rows_out, b.rows_out, "row count diverged");
        assert_eq!(
            a.spent.to_bits(),
            b.spent.to_bits(),
            "metered cost diverged: {} vs {}",
            a.spent,
            b.spent
        );
        batch_spent_bits.push((b.completed, b.rows_out, b.spent.to_bits()));
        for &pred in spill_preds {
            let sa = row.run_spill(plan, pred, budget).expect("row spill");
            let sb = engine.run_spill(plan, pred, budget).expect("batch spill");
            assert_eq!(sa.completed, sb.completed, "spill completion diverged");
            assert_eq!(sa.observation, sb.observation, "spill observation diverged");
            assert_eq!(
                sa.spent.to_bits(),
                sb.spent.to_bits(),
                "spill cost diverged on pred {pred}: {} vs {}",
                sa.spent,
                sb.spent
            );
        }
        assert_eq!(reg.counter("batch.fallbacks").value(), 0, "silent fallback");
    }
    assert_eq!(
        batch_spent_bits[0], batch_spent_bits[1],
        "batch engine diverged between mem and paged backends"
    );
}

const METHODS: [JoinMethod; 4] = [
    JoinMethod::HashJoin,
    JoinMethod::SortMergeJoin,
    JoinMethod::NestedLoopJoin,
    JoinMethod::IndexNLJoin,
];

/// fact ⋈ dim with the fact side optionally filtered / index-driven, in
/// either join orientation.
fn join_plan(method: JoinMethod, index_scan: bool, with_filter: bool, swap: bool) -> PlanNode {
    let fact = PlanNode::Scan {
        rel: 0,
        method: if index_scan && with_filter {
            ScanMethod::IndexScan
        } else {
            ScanMethod::SeqScan
        },
        filters: if with_filter { vec![1] } else { vec![] },
    };
    let dim = PlanNode::Scan {
        rel: 1,
        method: ScanMethod::SeqScan,
        filters: vec![],
    };
    let (left, right) = if swap { (dim, fact) } else { (fact, dim) };
    PlanNode::Join {
        method,
        left: Box::new(left),
        right: Box::new(right),
        preds: vec![0],
    }
}

/// Full-run metered cost of `plan` on the row engine (the budget scale).
fn full_cost(fx: &Fx, plan: &PlanNode) -> f64 {
    Executor::new(&fx.catalog, &fx.query, &fx.mem, CostParams::default())
        .run_full(plan, f64::INFINITY)
        .expect("unbudgeted run")
        .spent
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random plan shape x random budget fraction: both engines, both
    /// backends, full and spill mode, bit-identical.
    #[test]
    fn random_plans_bit_identical(
        m in 0usize..4,
        index_scan in any::<bool>(),
        with_filter in any::<bool>(),
        swap in any::<bool>(),
        frac in 0.02f64..1.3,
    ) {
        let fx = fx();
        let plan = join_plan(METHODS[m], index_scan, with_filter, swap);
        let budget = frac * full_cost(fx, &plan);
        let spill: &[usize] = if with_filter { &[0, 1] } else { &[0] };
        assert_bit_identical(fx, &plan, budget, spill);
    }

    /// Optimizer-chosen plans at random ESS locations (the plans the
    /// discovery algorithms actually execute), random budgets included.
    #[test]
    fn optimizer_plans_bit_identical(
        s0 in 1e-6f64..0.9,
        s1 in 1e-6f64..0.9,
        frac in 0.05f64..1.2,
    ) {
        let fx = fx();
        let opt = Optimizer::new(
            &fx.catalog,
            &fx.query,
            CostParams::default(),
            EnumerationMode::LeftDeep,
        )
        .expect("valid query");
        let (plan, _) = opt.optimize_at(&[s0, s1]);
        prop_assert!(Engine::batch_supports(&plan).is_ok(), "optimizer emitted unsupported plan");
        let budget = frac * full_cost(fx, &plan);
        assert_bit_identical(fx, &plan, budget, &[0]);
    }
}

// ------------------------------------------------------------- edge cases

/// Row counts straddling the batch size (and empty / single-row tables)
/// keep the engines bit-identical in full and spill mode.
#[test]
fn row_counts_straddling_batch_size() {
    for rows in [
        0,
        1,
        BATCH_SIZE as u64 - 1,
        BATCH_SIZE as u64,
        BATCH_SIZE as u64 + 1,
        2 * BATCH_SIZE as u64 + 17,
    ] {
        let fx = fx_from(rows, 49, 8);
        for method in METHODS {
            let plan = join_plan(method, false, true, false);
            assert_bit_identical(&fx, &plan, f64::INFINITY, &[0, 1]);
        }
    }
}

/// Mid-batch filter selectivity of exactly 0 (`v <= -1`) and exactly 1
/// (`v <= 99` over a 0..=99 domain): the selection-vector fast paths.
#[test]
fn filter_selectivity_extremes() {
    for filter_le in [-1, 99] {
        let fx = fx_from(3000, filter_le, 8);
        for method in METHODS {
            for index_scan in [false, true] {
                let plan = join_plan(method, index_scan, true, false);
                assert_bit_identical(&fx, &plan, f64::INFINITY, &[0, 1]);
            }
        }
    }
}

/// Budgets expiring exactly on a batch edge. A bare sequential scan
/// charges a constant per-tuple rate with checks quantized at
/// `BATCH_SIZE`, so `rate * k*BATCH_SIZE` (and one-ulp neighbours) lands
/// a budget exactly on / beside a check point; and a budget equal to the
/// full metered cost must complete (the trip condition is strictly
/// greater), while one ulp below must time out — identically in both
/// engines.
#[test]
fn budget_expiring_on_batch_edges() {
    let rows = 4 * BATCH_SIZE as u64;
    let fx = fx_from(rows, 49, 8);
    let scan = PlanNode::Scan {
        rel: 0,
        method: ScanMethod::SeqScan,
        filters: vec![],
    };
    let total = full_cost(&fx, &scan);
    let rate = total / rows as f64;
    let ulp_down = |x: f64| f64::from_bits(x.to_bits() - 1);
    let ulp_up = |x: f64| f64::from_bits(x.to_bits() + 1);
    for k in [1u64, 2, 3, 4] {
        let edge = rate * (k * BATCH_SIZE as u64) as f64;
        for budget in [ulp_down(edge), edge, ulp_up(edge)] {
            assert_bit_identical(&fx, &scan, budget, &[]);
        }
    }
    // Exactly the full cost completes; one ulp below does not.
    let row = Executor::new(&fx.catalog, &fx.query, &fx.mem, CostParams::default());
    assert!(row.run_full(&scan, total).unwrap().completed);
    assert!(!row.run_full(&scan, ulp_down(total)).unwrap().completed);
    assert_bit_identical(&fx, &scan, total, &[]);
    assert_bit_identical(&fx, &scan, ulp_down(total), &[]);
    // The same boundary behavior through a join (checks interleave
    // across operators, outcomes stay position-independent).
    let plan = join_plan(JoinMethod::HashJoin, false, true, false);
    let jtotal = full_cost(&fx, &plan);
    for budget in [jtotal, ulp_down(jtotal), 0.5 * jtotal] {
        assert_bit_identical(&fx, &plan, budget, &[0, 1]);
    }
}

// --------------------------------------------------------------- fallbacks

/// Every plan the optimizer can emit for the whole paper suite is inside
/// the vectorized subset: the row-engine fallback would never fire.
#[test]
fn paper_suite_plans_never_fall_back() {
    let catalog = tpcds::catalog_sf100();
    for bench in paper_suite(&catalog) {
        let opt = Optimizer::new(
            &catalog,
            &bench.query,
            CostParams::default(),
            EnumerationMode::LeftDeep,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        let d = bench.query.ndims();
        let mut locations = vec![vec![1e-6; d], vec![0.5; d], vec![0.9; d]];
        for j in 0..d {
            let mut one_hot = vec![1e-6; d];
            one_hot[j] = 0.3;
            locations.push(one_hot);
        }
        for sels in &locations {
            let (plan, _) = opt.optimize_at(sels);
            assert!(
                Engine::batch_supports(&plan).is_ok(),
                "{} at {sels:?}: optimizer plan outside the vectorized subset ({:?})",
                bench.name(),
                Engine::batch_supports(&plan).unwrap_err()
            );
        }
    }
}

/// Full SB/AB discovery through the dispatching engine is byte-identical
/// to the row engine's reports on both backends, with zero fallbacks
/// across every executed plan.
#[test]
fn discovery_reports_bit_identical_between_engines() {
    let catalog = tpcds::catalog(0.05);
    let bench = q91_with_dims(&catalog, 2);
    let query = &bench.query;
    let spec = executable_genspec_with_errors(&catalog, query, 42, &[50.0, 20.0]);
    let data = DataSet::generate(&catalog, &spec).expect("generate");
    let paged = PagedStore::materialize(
        &catalog,
        &data,
        StorageConfig::default().with_pool_frames(32),
    )
    .expect("materialize");
    let mem = DataStore::new(&catalog, data);
    let opt = Optimizer::new(
        &catalog,
        query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("valid query");
    let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, 6));
    let reg = MetricsRegistry::new();

    // serde_json round-trips f64 exactly: string equality is bit
    // equality for every budget, cost, and learnt selectivity.
    let mut reports: Vec<Vec<String>> = Vec::new();
    for store in [&mem as &dyn TableStore, &paged as &dyn TableStore] {
        for engine in [true, false] {
            let mut out = Vec::new();
            for algo in ["sb", "ab"] {
                let report = if engine {
                    let exec = Engine::new(&catalog, query, store, CostParams::default())
                        .with_metrics(&reg);
                    let mut oracle = ExecOracle::new(exec, &opt, surface.grid());
                    match algo {
                        "sb" => SpillBound::new(&surface, &opt, 2.0).run(&mut oracle),
                        _ => AlignedBound::new(&surface, &opt, 2.0).run(&mut oracle),
                    }
                } else {
                    let exec = Executor::new(&catalog, query, store, CostParams::default());
                    let mut oracle = ExecOracle::new(exec, &opt, surface.grid());
                    match algo {
                        "sb" => SpillBound::new(&surface, &opt, 2.0).run(&mut oracle),
                        _ => AlignedBound::new(&surface, &opt, 2.0).run(&mut oracle),
                    }
                }
                .unwrap_or_else(|e| panic!("{algo} completes: {e}"));
                out.push(format!(
                    "{algo} {} {}",
                    report.total_cost.to_bits(),
                    serde_json::to_string(&report).expect("serialize")
                ));
            }
            reports.push(out);
        }
    }
    for r in &reports[1..] {
        assert_eq!(&reports[0], r, "discovery reports diverged");
    }
    assert_eq!(
        reg.counter("batch.fallbacks").value(),
        0,
        "discovery dispatched a silent row-engine fallback"
    );
}
