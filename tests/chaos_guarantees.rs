//! Chaos guarantees: the paper's MSO bounds must survive fault
//! injection. With transient faults at realistic rates, SpillBound and
//! AlignedBound still terminate with sub-optimality within the
//! guarantee at *every* grid location, bit-identically reproducible
//! from the seed. With persistent faults, every caller gets a typed
//! degraded/error response — never a hang or a panic (a wall-clock
//! watchdog enforces this). The live-server test drives the circuit
//! breaker through its full open → degraded → half-open → closed cycle.

use rqp::artifacts::CompiledArtifact;
use rqp::catalog::{tpcds, Catalog, Column, ColumnStats, DataSet, DataType, Table};
use rqp::common::{MultiGrid, RqpError};
use rqp::core::{
    penalty, spillbound_guarantee, AlignedBound, CostOracle, EvalContext, FaultyOracle,
    NativeChoice, PenaltyConfig, PriorConfig, SelectivityPrior, SpillBound,
};
use rqp::ess::EssSurface;
use rqp::executor::Executor;
use rqp::faults::{BreakerConfig, FaultPlan, FaultSite, RetryPolicy};
use rqp::obs::MetricValue;
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer, Predicate, PredicateKind, QuerySpec};
use rqp::runner::{measure_qa, ExecOracle};
use rqp::server::{serve, Client, Registry, ServedQuery, ServerConfig};
use rqp::storage::{PagedStore, StorageConfig};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Fails the test if `body` runs longer than `secs` — faults must
/// surface as typed errors, never as hangs.
fn with_watchdog(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        // Completed or panicked: join either way so a panic propagates.
        Ok(()) | Err(RecvTimeoutError::Disconnected) => worker.join().unwrap(),
        Err(RecvTimeoutError::Timeout) => {
            panic!("watchdog: test body still running after {secs}s — a fault caused a hang")
        }
    }
}

struct Fx {
    opt: Optimizer<'static>,
    surface: EssSurface,
}

/// 2D Q91 over an 8×8 grid, shared across tests (compile dominates).
fn fx() -> &'static Fx {
    static FX: OnceLock<Fx> = OnceLock::new();
    FX.get_or_init(|| {
        let catalog: &'static Catalog = Box::leak(Box::new(tpcds::catalog_sf100()));
        let query: &'static QuerySpec =
            Box::leak(Box::new(rqp::workloads::q91_with_dims(catalog, 2).query));
        let opt = Optimizer::new(
            catalog,
            query,
            CostParams::default(),
            EnumerationMode::LeftDeep,
        )
        .unwrap();
        let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-5, 8));
        Fx { opt, surface }
    })
}

/// Per-(location, algorithm) plan: independent but reproducible streams.
fn point_plan(seed: u64, qa: usize, salt: u64, rate: f64) -> FaultPlan {
    FaultPlan::new(seed ^ (qa as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt)
        .with_site(FaultSite::OracleSpill, rate)
        .with_site(FaultSite::OracleFull, rate)
}

#[test]
fn transient_faults_preserve_the_mso_bound_at_every_location() {
    with_watchdog(300, || {
        let f = fx();
        let bound = spillbound_guarantee(2);
        let mut sb = SpillBound::new(&f.surface, &f.opt, 2.0);
        let mut ab = AlignedBound::new(&f.surface, &f.opt, 2.0);
        for rate in [0.05, 0.1] {
            let mut injected = 0u64;
            for qa in 0..f.surface.len() {
                let opt_cost = f.surface.opt_cost(qa);
                for salt in [1u64, 2] {
                    let plan = point_plan(9001, qa, salt, rate);
                    let inner = CostOracle::at_grid(&f.opt, f.surface.grid(), qa);
                    let mut oracle = FaultyOracle::new(inner, &plan);
                    let report = match salt {
                        1 => sb.run(&mut oracle),
                        _ => ab.run(&mut oracle),
                    }
                    .unwrap_or_else(|e| {
                        panic!("rate-{rate} transients must be absorbed at {qa}: {e}")
                    });
                    assert!(report.completed, "discovery incomplete at {qa}");
                    let sub = report.sub_optimality(opt_cost);
                    assert!(
                        sub <= bound * (1.0 + 1e-9),
                        "sub-optimality {sub} exceeds MSO bound {bound} at {qa} (rate {rate})"
                    );
                    injected += oracle.stats().faults_injected;
                }
            }
            // The sweep actually exercised the fault paths.
            assert!(injected > 0, "rate-{rate} sweep injected no faults");
        }
    });
}

#[test]
fn fault_streams_replay_bit_identically_from_the_seed() {
    with_watchdog(300, || {
        let f = fx();
        let sweep = || {
            let mut sb = SpillBound::new(&f.surface, &f.opt, 2.0);
            let mut out = Vec::new();
            for qa in 0..f.surface.len() {
                let plan = point_plan(4242, qa, 1, 0.1);
                let inner = CostOracle::at_grid(&f.opt, f.surface.grid(), qa);
                let mut oracle = FaultyOracle::new(inner, &plan);
                let report = sb.run(&mut oracle).unwrap();
                out.push((
                    report.total_cost.to_bits(),
                    report.executions(),
                    oracle.stats().clone(),
                ));
            }
            out
        };
        let (first, second) = (sweep(), sweep());
        assert_eq!(first, second, "same seed must replay bit-identically");
        // And transients leave the discovery cost untouched: the
        // retried run costs exactly what a fault-free run costs.
        let mut sb = SpillBound::new(&f.surface, &f.opt, 2.0);
        for (qa, faulty) in first.iter().enumerate() {
            let mut clean = CostOracle::at_grid(&f.opt, f.surface.grid(), qa);
            let report = sb.run(&mut clean).unwrap();
            assert_eq!(
                report.total_cost.to_bits(),
                faulty.0,
                "absorbed faults changed the reported cost at {qa}"
            );
        }
    });
}

#[test]
fn persistent_faults_become_typed_errors_not_hangs() {
    with_watchdog(60, || {
        let f = fx();
        let mut sb = SpillBound::new(&f.surface, &f.opt, 2.0);
        let mut ab = AlignedBound::new(&f.surface, &f.opt, 2.0);
        for salt in [1u64, 2] {
            let plan = FaultPlan::new(7 ^ salt)
                .with_site(FaultSite::OracleSpill, 1.0)
                .with_site(FaultSite::OracleFull, 1.0);
            let inner = CostOracle::at_grid(&f.opt, f.surface.grid(), 0);
            let mut oracle = FaultyOracle::new(inner, &plan);
            let res = match salt {
                1 => sb.run(&mut oracle),
                _ => ab.run(&mut oracle),
            };
            match res {
                Err(RqpError::Fault(msg)) => {
                    assert!(msg.contains("persisted"), "unexpected message: {msg}")
                }
                other => panic!("expected a typed fault, got {other:?}"),
            }
        }
        // A fault budget of zero degrades immediately, also typed.
        let plan = FaultPlan::new(7).with_site(FaultSite::OracleSpill, 1.0);
        let inner = CostOracle::at_grid(&f.opt, f.surface.grid(), 0);
        let mut oracle = FaultyOracle::new(inner, &plan).with_fault_budget(0);
        match sb.run(&mut oracle) {
            Err(RqpError::Fault(_)) => {}
            other => panic!("expected a typed fault, got {other:?}"),
        }
    });
}

/// Builds the penalty-aware fixture pieces over the shared 2D surface:
/// an eval context, the seeded prior centred on the native estimate, and
/// the default expected-penalty objective.
fn pa_parts(f: &'static Fx) -> (EvalContext<'static>, SelectivityPrior, PenaltyConfig) {
    let ctx = EvalContext::with_threads(&f.surface, &f.opt, 1);
    let choice = NativeChoice::compute(&f.surface, &f.opt);
    let prior =
        SelectivityPrior::lognormal(f.surface.grid(), &choice.qe_sels, PriorConfig::default())
            .expect("prior over the ESS grid");
    (ctx, prior, PenaltyConfig::default())
}

/// Transient oracle faults during penalty-aware risk evaluation are
/// absorbed by bounded retries and cannot perturb the selection: every
/// faulted round reproduces the clean selection bit-for-bit (prior hash,
/// chosen fingerprint, expected penalty, CVaR, and the full per-candidate
/// risk vector), and the same fault seed replays identical fault
/// counters.
#[test]
fn transient_faults_leave_penalty_selection_bit_identical() {
    with_watchdog(300, || {
        let f = fx();
        let (ctx, prior, cfg) = pa_parts(f);
        let clean = penalty::select_ctx(&ctx, &prior, &cfg).expect("clean selection");
        let clean_risks: Vec<(u64, u64, u64)> = clean
            .risks
            .iter()
            .map(|r| (r.fingerprint, r.expected.to_bits(), r.cvar.to_bits()))
            .collect();
        let retry = RetryPolicy::no_sleep(6);
        for rate in [0.05, 0.1] {
            let mut injected = 0u64;
            for round in 0..8u64 {
                let mk_plan = || {
                    FaultPlan::new(0xBEEF ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                        .with_site(FaultSite::OracleFull, rate)
                };
                let (sel, stats) =
                    penalty::select_ctx_faulted(&ctx, &prior, &cfg, &mk_plan(), &retry)
                        .unwrap_or_else(|e| {
                            panic!("rate-{rate} transients must be absorbed (round {round}): {e}")
                        });
                assert_eq!(sel.prior_hash, clean.prior_hash, "prior hash drifted");
                assert_eq!(
                    sel.chosen.fingerprint, clean.chosen.fingerprint,
                    "faults changed the chosen plan (round {round}, rate {rate})"
                );
                assert_eq!(
                    sel.chosen.expected.to_bits(),
                    clean.chosen.expected.to_bits(),
                    "expected penalty drifted under absorbed faults"
                );
                assert_eq!(
                    sel.chosen.cvar.to_bits(),
                    clean.chosen.cvar.to_bits(),
                    "CVaR drifted under absorbed faults"
                );
                let risks: Vec<(u64, u64, u64)> = sel
                    .risks
                    .iter()
                    .map(|r| (r.fingerprint, r.expected.to_bits(), r.cvar.to_bits()))
                    .collect();
                assert_eq!(risks, clean_risks, "per-candidate risks drifted");
                // A fresh plan from the same seed replays the same
                // fault stream (FaultPlan carries its PRNG state, so
                // the instance itself is not reusable).
                let (_, replay) =
                    penalty::select_ctx_faulted(&ctx, &prior, &cfg, &mk_plan(), &retry)
                        .expect("replay of an absorbed round");
                assert_eq!(stats, replay, "same seed must replay identical fault stats");
                injected += stats.faults_injected;
            }
            assert!(injected > 0, "rate-{rate} sweep injected no faults");
        }
    });
}

/// A persistent oracle fault exhausts the retry budget during risk
/// evaluation and surfaces as a typed fault naming the candidate — never
/// a hang, never a silently skewed selection.
#[test]
fn persistent_faults_fail_penalty_selection_with_a_typed_error() {
    with_watchdog(60, || {
        let f = fx();
        let (ctx, prior, cfg) = pa_parts(f);
        let plan = FaultPlan::new(7).with_site(FaultSite::OracleFull, 1.0);
        match penalty::select_ctx_faulted(&ctx, &prior, &cfg, &plan, &RetryPolicy::no_sleep(4)) {
            Err(RqpError::Fault(msg)) => {
                assert!(msg.contains("persisted"), "unexpected message: {msg}");
                assert!(
                    msg.contains("risk evaluation"),
                    "fault should name the penalty stage: {msg}"
                );
            }
            other => panic!("expected a typed fault, got {other:?}"),
        }
    });
}

/// Executable 2D fixture for page-level faults: materialized data plus a
/// surface, so SpillBound runs on the real engine over the paged store.
struct PageFx {
    catalog: &'static Catalog,
    query: &'static QuerySpec,
    data: DataSet,
    opt: Optimizer<'static>,
    surface: EssSurface,
}

fn page_fx() -> &'static PageFx {
    static FX: OnceLock<PageFx> = OnceLock::new();
    FX.get_or_init(|| {
        let catalog: &'static Catalog = Box::leak(Box::new(tpcds::catalog(0.05)));
        let query: &'static QuerySpec =
            Box::leak(Box::new(rqp::workloads::q91_with_dims(catalog, 2).query));
        let spec =
            rqp::workloads::executable_genspec_with_errors(catalog, query, 1337, &[30.0, 10.0]);
        let data = DataSet::generate(catalog, &spec).unwrap();
        let opt = Optimizer::new(
            catalog,
            query,
            CostParams::default(),
            EnumerationMode::LeftDeep,
        )
        .unwrap();
        let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, 8));
        PageFx {
            catalog,
            query,
            data,
            opt,
            surface,
        }
    })
}

fn page_counter(store: &PagedStore, name: &str) -> u64 {
    store
        .registry()
        .snapshot()
        .into_iter()
        .find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(c),
            _ => None,
        })
        .unwrap_or(0)
}

/// One SpillBound run over a freshly materialized paged store (16
/// frames) with `plan` armed only after materialization and ground-truth
/// measurement, so every replay of the same seed sees the same pages and
/// the same fault-shot sequence. Returns the run outcome (total cost and
/// sub-optimality, both as bits) and the injected/retry counters.
#[allow(clippy::type_complexity)]
fn paged_sb_run(
    f: &'static PageFx,
    plan: Option<Arc<FaultPlan>>,
) -> (
    Result<(u64, u64), RqpError>,
    u64, // faults injected across the three page sites
    u64, // pool-level retries that absorbed them
) {
    let config = StorageConfig::default().with_pool_frames(16);
    let store = PagedStore::materialize(f.catalog, &f.data, config).expect("materialize");
    let qa = measure_qa(&store, f.query);
    let (opt_plan, _) = f.opt.optimize_at(&qa);
    let opt_spent = Executor::new(f.catalog, f.query, &store, CostParams::default())
        .run_full(&opt_plan, f64::INFINITY)
        .expect("clean optimal run")
        .spent;
    store.set_faults(plan);
    let mut sb = SpillBound::new(&f.surface, &f.opt, 2.0);
    let mut oracle = ExecOracle::new(
        Executor::new(f.catalog, f.query, &store, CostParams::default()),
        &f.opt,
        f.surface.grid(),
    );
    let res = sb.run(&mut oracle).map(|r| {
        (
            r.total_cost.to_bits(),
            r.sub_optimality(opt_spent).to_bits(),
        )
    });
    let injected = page_counter(&store, "storage.faults.torn_write")
        + page_counter(&store, "storage.faults.failed_pin")
        + page_counter(&store, "storage.faults.checksum");
    (
        res,
        injected,
        page_counter(&store, "storage.faults.retries"),
    )
}

/// Transient page-level faults — torn writes, failed pins, checksum
/// mismatches — are absorbed by the pool's bounded retries: SpillBound
/// still completes within its MSO bound, and the same seed replays
/// bit-identically (same total cost, same fault counters), per site.
#[test]
fn transient_page_faults_preserve_the_bound_and_replay() {
    with_watchdog(300, || {
        let f = page_fx();
        let bound = spillbound_guarantee(2);
        for site in [
            FaultSite::PageTornWrite,
            FaultSite::PagePinFailed,
            FaultSite::PageChecksum,
        ] {
            // Escalation past the pool needs FAULT_RETRIES consecutive
            // shots, so 2% per call injects plenty of faults (pins and
            // page I/Os number in the thousands) while keeping
            // executor-level aborts rare enough for the oracle's retry
            // budget to absorb.
            let run = || {
                paged_sb_run(
                    f,
                    Some(Arc::new(FaultPlan::new(0xC0FFEE).with_site(site, 0.02))),
                )
            };
            let (first, second) = (run(), run());
            let (res, injected, retries) = &first;
            let (_, sub_bits) = res
                .as_ref()
                .unwrap_or_else(|e| panic!("{site:?} transients must be absorbed: {e}"));
            let sub = f64::from_bits(*sub_bits);
            assert!(
                sub <= bound * (1.0 + 1e-9),
                "{site:?}: sub-optimality {sub} exceeds MSO bound {bound}"
            );
            assert!(*injected > 0, "{site:?} never fired at rate 0.2");
            assert!(*retries > 0, "{site:?} faults were never retried");
            assert_eq!(
                (first.0.as_ref().ok(), first.1, first.2),
                (second.0.as_ref().ok(), second.1, second.2),
                "{site:?}: same seed must replay bit-identically"
            );
        }
    });
}

/// A persistent page fault (every pin attempt fails) exhausts the
/// bounded retries at both the pool and the oracle layer and surfaces as
/// a typed fault — never a hang, never a silent wrong answer.
#[test]
fn persistent_page_faults_become_typed_errors() {
    with_watchdog(120, || {
        let f = page_fx();
        for site in [FaultSite::PagePinFailed, FaultSite::PageChecksum] {
            let (res, injected, _) =
                paged_sb_run(f, Some(Arc::new(FaultPlan::new(7).with_site(site, 1.0))));
            match res {
                Err(RqpError::Fault(_)) => {}
                other => panic!("{site:?}: expected a typed fault, got {other:?}"),
            }
            assert!(injected > 0);
        }
    });
}

/// A 2-epp star query over a small synthetic catalog (the served-query
/// fixture; core's test fixtures are crate-private).
fn star2() -> (Catalog, QuerySpec) {
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "fact",
        1_000_000,
        vec![
            Column::new("f1", DataType::Int, ColumnStats::uniform(10_000)).with_index(),
            Column::new("f2", DataType::Int, ColumnStats::uniform(1_000)).with_index(),
            Column::new("v", DataType::Int, ColumnStats::uniform(1_000)),
        ],
    ))
    .unwrap();
    for (name, rows) in [("d1", 10_000u64), ("d2", 1_000)] {
        cat.add_table(Table::new(
            name,
            rows,
            vec![
                Column::new("k", DataType::Int, ColumnStats::uniform(rows)).with_index(),
                Column::new("a", DataType::Int, ColumnStats::uniform(50)),
            ],
        ))
        .unwrap();
    }
    let query = QuerySpec {
        name: "star2".into(),
        relations: vec![0, 1, 2],
        predicates: vec![
            Predicate {
                label: "f-d1".into(),
                kind: PredicateKind::Join {
                    left: 0,
                    left_col: 0,
                    right: 1,
                    right_col: 0,
                },
            },
            Predicate {
                label: "f-d2".into(),
                kind: PredicateKind::Join {
                    left: 0,
                    left_col: 1,
                    right: 2,
                    right_col: 0,
                },
            },
        ],
        epps: vec![0, 1],
    };
    (cat, query)
}

#[test]
fn server_breaker_degrades_then_recovers() {
    with_watchdog(120, || {
        let (cat, q) = star2();
        let cat: &'static Catalog = Box::leak(Box::new(cat));
        let opt =
            Optimizer::new(cat, &q, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let artifact = CompiledArtifact::compile(&opt, MultiGrid::uniform(2, 1e-5, 8), 2.0, 0.2, 2);

        // The first two spill probes fail hard, then the fault heals.
        // No retries, so each injected probe fails one whole request.
        let plan = Arc::new(FaultPlan::new(11).with_fail_first(FaultSite::OracleSpill, 2));
        let served = ServedQuery::from_artifact(artifact, cat)
            .unwrap()
            .with_faults(Arc::clone(&plan), RetryPolicy::no_sleep(1))
            .with_breaker(BreakerConfig {
                threshold: 2,
                cooldown: Duration::from_millis(200),
            });
        let mut reg = Registry::new();
        reg.insert(served);
        let handle = serve(reg, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.addr;
        let mut c = Client::connect(addr).unwrap();
        let qa = [0.02, 0.4];

        // Request 1: fault propagates as a typed execution error.
        let r1 = c
            .call_raw(&rqp::server::request_line(
                1.0,
                "run_spillbound",
                Some("star2"),
                &qa,
                None,
            ))
            .unwrap();
        assert!(
            r1.contains("\"kind\":\"execution_fault\""),
            "expected execution_fault, got: {r1}"
        );

        // Request 2: second consecutive fault trips the breaker, and the
        // response degrades to the native plan — labelled as such.
        let r2 = c
            .call_raw(&rqp::server::request_line(
                2.0,
                "run_spillbound",
                Some("star2"),
                &qa,
                None,
            ))
            .unwrap();
        assert!(r2.contains("\"ok\":true"), "{r2}");
        assert!(r2.contains("\"degraded\":true"), "{r2}");
        assert!(r2.contains("\"algorithm\":\"native\""), "{r2}");
        assert!(
            r2.contains("\"requested_algorithm\":\"spillbound\""),
            "{r2}"
        );

        // Request 3: breaker is open — degraded without touching the
        // (now healed) execution path.
        let r3 = c
            .call_raw(&rqp::server::request_line(
                3.0,
                "run_spillbound",
                Some("star2"),
                &qa,
                None,
            ))
            .unwrap();
        assert!(r3.contains("\"degraded\":true"), "{r3}");

        // Health reflects the open breaker.
        let health = c.call(4.0, "health", None, &[], None).unwrap();
        let breaker = health
            .get("result")
            .unwrap()
            .get("queries")
            .unwrap()
            .get("star2")
            .unwrap();
        assert_eq!(
            breaker.get("breaker").unwrap().as_str(),
            Some("open"),
            "{health:?}"
        );

        // After the cooldown the half-open probe finds the fault healed:
        // the breaker closes and full service resumes.
        std::thread::sleep(Duration::from_millis(300));
        let r4 = c
            .call_raw(&rqp::server::request_line(
                5.0,
                "run_spillbound",
                Some("star2"),
                &qa,
                None,
            ))
            .unwrap();
        assert!(r4.contains("\"ok\":true"), "{r4}");
        assert!(r4.contains("\"degraded\":false"), "{r4}");
        assert!(r4.contains("\"algorithm\":\"spillbound\""), "{r4}");

        let health = c.call(6.0, "health", None, &[], None).unwrap();
        let breaker = health
            .get("result")
            .unwrap()
            .get("queries")
            .unwrap()
            .get("star2")
            .unwrap();
        assert_eq!(breaker.get("breaker").unwrap().as_str(), Some("closed"));
        assert!(breaker.get("open_events").unwrap().as_f64().unwrap() >= 1.0);

        // The fault counters surfaced in stats.
        let stats = c.call(7.0, "stats", None, &[], None).unwrap();
        let faults = stats.get("result").unwrap().get("faults").unwrap();
        assert!(faults.get("faults_injected").unwrap().as_f64().unwrap() >= 2.0);
        assert!(faults.get("breaker_open").unwrap().as_f64().unwrap() >= 1.0);
        assert!(faults.get("degraded_responses").unwrap().as_f64().unwrap() >= 2.0);
        // Wasted cost (budget burnt by faulted probes) is observable too:
        // the injected faults above each abandoned a partly-run probe.
        let wasted = faults.get("wasted_cost").unwrap().as_f64().unwrap();
        assert!(wasted > 0.0, "faulted probes must report wasted cost");
        // And the raw registry block mirrors the same gauge.
        let registry = stats.get("result").unwrap().get("registry").unwrap();
        assert_eq!(
            registry
                .get("faults.wasted_cost")
                .unwrap()
                .as_f64()
                .unwrap(),
            wasted,
            "registry and faults block disagree on wasted cost"
        );

        handle.stop();
    });
}

/// Shutdown with requests in flight: every request the server accepted
/// (read off the socket) is answered before its connection closes —
/// either with its full response (when the worker finishes inside the
/// drain window) or with a typed `shutting_down` error. Nothing is
/// silently dropped, and the schedule forces both outcomes to occur.
#[test]
fn shutdown_answers_every_inflight_request() {
    use std::io::ErrorKind;

    with_watchdog(60, || {
        let (cat, q) = star2();
        let cat: &'static Catalog = Box::leak(Box::new(cat));
        let opt =
            Optimizer::new(cat, &q, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let artifact = CompiledArtifact::compile(&opt, MultiGrid::uniform(2, 1e-5, 8), 2.0, 0.2, 2);
        let mut reg = Registry::new();
        reg.insert(ServedQuery::from_artifact(artifact, cat).unwrap());
        // A single worker serializes the batch (80ms of debug sleep per
        // request), so shutdown lands with most of it still queued; the
        // 300ms drain window lets the front of the queue finish.
        let config = ServerConfig {
            workers: 1,
            allow_debug_sleep: true,
            shutdown_drain: Duration::from_millis(300),
            ..ServerConfig::default()
        };
        let handle = serve(reg, "127.0.0.1:0", config).unwrap();
        let addr = handle.addr;

        // Pipeline 8 slow requests in one write, then shut down from a
        // second connection while they are in flight.
        const N: usize = 8;
        let mut inflight = Client::connect(addr).unwrap();
        let batch: String = (0..N)
            .map(|i| {
                format!(
                    "{{\"id\":\"req-{i}\",\"method\":\"run_spillbound\",\
                     \"query\":\"star2\",\"qa\":[0.02,0.4],\"sleep_ms\":80}}\n"
                )
            })
            .collect();
        inflight.send_batch(&batch).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        let mut ctl = Client::connect(addr).unwrap();
        let bye = ctl
            .call_raw(&rqp::server::request_line(
                99.0,
                "shutdown",
                None,
                &[],
                None,
            ))
            .unwrap();
        assert!(bye.contains("\"ok\":true"), "{bye}");

        // Read to EOF. Responses come back in request order (the server
        // writes strictly by sequence number; a synthesized shutdown
        // error carries a null id because the original id is still with
        // the queued worker job), so match by position.
        let mut outcomes = Vec::new();
        loop {
            match inflight.read_response() {
                Ok(line) => {
                    let i = outcomes.len();
                    let full = line.contains("\"ok\":true")
                        && line.contains(&format!("\"id\":\"req-{i}\""))
                        && line.contains("\"algorithm\":\"spillbound\"");
                    let typed = line.contains("\"ok\":false")
                        && line.contains("\"kind\":\"shutting_down\"");
                    assert!(
                        full || typed,
                        "request {i}: neither a full response nor a typed \
                         shutting_down error: {line}"
                    );
                    outcomes.push(full);
                }
                Err(e) if e.kind() == ErrorKind::UnexpectedEof => break,
                Err(e) => panic!("reading drained responses: {e}"),
            }
        }
        assert_eq!(
            outcomes.len(),
            N,
            "accepted requests were silently dropped at shutdown: got \
             {outcomes:?}"
        );
        // The schedule (1 worker × 80ms, shutdown at ~40ms, 300ms drain)
        // guarantees both outcomes: the front of the queue completes
        // inside the drain window, the tail cannot.
        let full = outcomes.iter().filter(|&&f| f).count();
        assert!(full >= 1, "no request completed inside the drain window");
        assert!(
            full < N,
            "shutdown never interrupted the batch; the test raced"
        );
        // Completions are in-order: once one request was cut off, every
        // later one was too (single worker, FIFO queue).
        let first_cut = outcomes.iter().position(|&f| !f).unwrap();
        assert!(
            outcomes[first_cut..].iter().all(|&f| !f),
            "a request completed after an earlier one was already cut \
             off: {outcomes:?}"
        );
        handle.stop();
    });
}

/// A slow-loris client cannot dodge its deadline: the clock starts when
/// the server reads the *first byte* of the request, so stalling
/// mid-line past `deadline_ms` and then completing the request is
/// answered `deadline_exceeded` — not served as if it just arrived.
#[test]
fn stalled_writer_cannot_dodge_its_deadline() {
    use std::io::{BufRead, BufReader, Write};

    with_watchdog(60, || {
        let (cat, q) = star2();
        let cat: &'static Catalog = Box::leak(Box::new(cat));
        let opt =
            Optimizer::new(cat, &q, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let artifact = CompiledArtifact::compile(&opt, MultiGrid::uniform(2, 1e-5, 8), 2.0, 0.2, 2);
        let mut reg = Registry::new();
        reg.insert(ServedQuery::from_artifact(artifact, cat).unwrap());
        let handle = serve(reg, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.addr;

        // Dribble a request across its own 100ms deadline: half the
        // line, a 400ms stall, then the rest.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let line = r#"{"id":1,"method":"run_spillbound","query":"star2","qa":[0.02,0.4],"deadline_ms":100}"#;
        let (head, tail) = line.split_at(line.len() / 2);
        stream.write_all(head.as_bytes()).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(400));
        stream.write_all(tail.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();

        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(
            response.contains("\"kind\":\"deadline_exceeded\""),
            "slow-loris dodged the deadline: {response}"
        );

        // The same request written promptly on the same connection is
        // served: the first-byte clock resets per request.
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut ok = String::new();
        reader.read_line(&mut ok).unwrap();
        assert!(ok.contains("\"ok\":true"), "{ok}");
        assert!(ok.contains("\"algorithm\":\"spillbound\""), "{ok}");

        // An inline method stalled the same way is also rejected — the
        // first-byte clock applies before dispatch, not only at worker
        // dequeue.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let line = r#"{"id":2,"method":"list_queries","deadline_ms":100}"#;
        let (head, tail) = line.split_at(line.len() / 2);
        stream.write_all(head.as_bytes()).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(400));
        stream.write_all(tail.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(
            response.contains("\"kind\":\"deadline_exceeded\""),
            "inline slow-loris dodged the deadline: {response}"
        );

        handle.stop();
    });
}
