//! Crash-recovery integration harness.
//!
//! Spawns the `rqp` binary's deterministic crash-victim workload as a
//! child process, kills it mid-mutation — both at every named crashpoint
//! (armed via `RQP_CRASH_POINT`, which aborts the process with no
//! destructors) and with a raw SIGKILL at a seeded random delay — then
//! restarts it with `--recover` and asserts the three durability
//! invariants:
//!
//! 1. **No torn state**: after recovery the store directory holds no
//!    stray `*.tmp` files and every surviving `.rqpa` artifact parses.
//! 2. **Bit-identical reports**: the recovered run's `report` lines
//!    (raw `f64` bit patterns for SB/AB total cost and sub-optimality,
//!    plus the artifact fingerprint) equal an uninterrupted reference
//!    run's, byte for byte.
//! 3. **MSO bound holds**: the reported sub-optimality bits decode to a
//!    value within the D²+3D guarantee.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

fn rqp_bin() -> &'static str {
    env!("CARGO_BIN_EXE_rqp")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rqp-crash-harness-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn victim(dir: &Path, recover: bool, crash: Option<&str>) -> Output {
    let mut cmd = Command::new(rqp_bin());
    cmd.arg("crash-victim").arg("--dir").arg(dir);
    if recover {
        cmd.arg("--recover");
    }
    cmd.env_remove("RQP_CRASH_POINT");
    if let Some(point) = crash {
        cmd.env("RQP_CRASH_POINT", point);
    }
    cmd.output().expect("spawn crash victim")
}

fn report_lines(out: &Output) -> Vec<String> {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| l.starts_with("report "))
        .map(str::to_string)
        .collect()
}

/// Invariant 1: nothing torn survives recovery — no `*.tmp` remnants,
/// and every artifact still in the store root parses and validates.
fn assert_clean_dir(dir: &Path, label: &str) {
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        match path.extension().and_then(|e| e.to_str()) {
            Some("tmp") => panic!("{label}: stray temp file survived recovery: {path:?}"),
            Some("rqpa") => {
                rqp::artifacts::load_any_path(&path)
                    .unwrap_or_else(|e| panic!("{label}: torn artifact {path:?}: {e}"));
            }
            _ => {}
        }
    }
}

/// Invariant 3: decode the `sub_bits=` fields and check the D²+3D bound
/// (the victim runs 2D_Q91, so the bound is 10).
fn assert_mso_bound(lines: &[String], label: &str) {
    let bound = 10.0;
    let mut checked = 0;
    for line in lines {
        let Some(bits) = line.split("sub_bits=").nth(1) else {
            continue;
        };
        let sub = f64::from_bits(u64::from_str_radix(bits.trim(), 16).unwrap());
        assert!(
            sub <= bound * (1.0 + 1e-9),
            "{label}: sub-optimality {sub} exceeds the MSO bound {bound}: {line}"
        );
        checked += 1;
    }
    assert_eq!(checked, 2, "{label}: expected SB and AB report lines");
}

fn reference_report(tag: &str) -> Vec<String> {
    let dir = scratch(tag);
    let out = victim(&dir, false, None);
    assert!(
        out.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines = report_lines(&out);
    assert!(!lines.is_empty(), "reference run produced no report lines");
    assert_mso_bound(&lines, "reference");
    let _ = std::fs::remove_dir_all(&dir);
    lines
}

/// Recover in `dir`, rerun, and assert all three invariants against the
/// reference report.
fn recover_and_assert(dir: &Path, want: &[String], label: &str) {
    let out = victim(dir, true, None);
    assert!(
        out.status.success(),
        "{label}: recovery rerun failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("recovery:"),
        "{label}: --recover printed no recovery summary:\n{stdout}"
    );
    let got = report_lines(&out);
    assert_eq!(
        got, want,
        "{label}: recovered report diverged from the uninterrupted reference"
    );
    assert_mso_bound(&got, label);
    assert_clean_dir(dir, label);
}

#[test]
fn every_named_crashpoint_recovers_to_the_reference_report() {
    let want = reference_report("points-ref");
    for point in rqp::faults::crash::POINTS {
        let dir = scratch(&point.replace('.', "-"));
        let armed = victim(&dir, false, Some(point));
        assert!(
            !armed.status.success(),
            "crashpoint {point} never fired: the armed victim exited cleanly"
        );
        assert!(
            String::from_utf8_lossy(&armed.stderr).contains(&format!("crashpoint hit: {point}")),
            "crashpoint {point}: armed victim died for an unrelated reason:\n{}",
            String::from_utf8_lossy(&armed.stderr)
        );
        recover_and_assert(&dir, &want, &format!("crashpoint {point}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn seeded_sigkill_rounds_recover_to_the_reference_report() {
    let want = reference_report("sigkill-ref");
    // SplitMix64 over a fixed seed: the kill delays are reproducible.
    let mut state = 0x00C0_FFEE_u64;
    let mut next = move || -> u64 {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for round in 0..5u32 {
        let delay_ms = 1 + next() % 30;
        let dir = scratch(&format!("sigkill-{round}"));
        let mut child = Command::new(rqp_bin())
            .arg("crash-victim")
            .arg("--dir")
            .arg(&dir)
            .env_remove("RQP_CRASH_POINT")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn victim");
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        // SIGKILL on unix: no destructors, no flushes.
        let _ = child.kill();
        let _ = child.wait();
        recover_and_assert(
            &dir,
            &want,
            &format!("sigkill round {round} ({delay_ms}ms)"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
