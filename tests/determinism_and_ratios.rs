//! Integration tests: determinism of the discovery algorithms and
//! correctness of the guarantees at non-default contour ratios, exercised
//! on the paper's example query `EQ` (Fig. 1).

use rqp::catalog::tpch;
use rqp::core::accounting::verify_spillbound_run;
use rqp::core::{
    planbouquet_guarantee_ratio, spillbound_guarantee_ratio, AlignedBound, CostOracle, PlanBouquet,
    SpillBound,
};
use rqp::ess::EssSurface;
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp::workloads::example_query_eq;
use rqp_common::MultiGrid;

struct Fx {
    opt: Optimizer<'static>,
    surface: EssSurface,
}

fn eq_fixture(n: usize) -> Fx {
    let catalog: &'static _ = Box::leak(Box::new(tpch::catalog(0.5)));
    let query: &'static _ = Box::leak(Box::new(example_query_eq(catalog)));
    let opt = Optimizer::new(
        catalog,
        query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("EQ valid");
    let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, n));
    Fx { opt, surface }
}

#[test]
fn planbouquet_guarantee_holds_at_non_doubling_ratios() {
    let fx = eq_fixture(10);
    for ratio in [1.5, 2.0, 3.0] {
        let pb = PlanBouquet::new(&fx.surface, &fx.opt, ratio, 0.2);
        let bound = pb.mso_guarantee();
        assert!((bound - planbouquet_guarantee_ratio(0.2, pb.rho_red(), ratio)).abs() < 1e-9);
        for qa in fx.surface.grid().iter() {
            let mut oracle = CostOracle::at_grid(&fx.opt, fx.surface.grid(), qa);
            let report = pb.run(&mut oracle).expect("PB completes");
            let sub = report.sub_optimality(fx.surface.opt_cost(qa));
            assert!(
                sub <= bound * (1.0 + 1e-6),
                "ratio {ratio}, qa {:?}: {sub} > {bound}",
                fx.surface.grid().coords(qa)
            );
        }
    }
}

#[test]
fn spillbound_guarantee_holds_at_non_doubling_ratios() {
    let fx = eq_fixture(10);
    for ratio in [1.5, 1.8, 2.5] {
        let mut sb = SpillBound::new(&fx.surface, &fx.opt, ratio);
        let bound = spillbound_guarantee_ratio(2, ratio);
        for qa in fx.surface.grid().iter() {
            let mut oracle = CostOracle::at_grid(&fx.opt, fx.surface.grid(), qa);
            let report = sb.run(&mut oracle).expect("SB completes");
            let sub = report.sub_optimality(fx.surface.opt_cost(qa));
            assert!(
                sub <= bound * (1.0 + 1e-6),
                "ratio {ratio}, qa {:?}: {sub} > {bound}",
                fx.surface.grid().coords(qa)
            );
        }
    }
}

#[test]
fn discovery_runs_are_deterministic() {
    let fx = eq_fixture(12);
    // Two independent instances must produce identical traces everywhere.
    let mut sb1 = SpillBound::new(&fx.surface, &fx.opt, 2.0);
    let mut sb2 = SpillBound::new(&fx.surface, &fx.opt, 2.0);
    let mut ab1 = AlignedBound::new(&fx.surface, &fx.opt, 2.0);
    let mut ab2 = AlignedBound::new(&fx.surface, &fx.opt, 2.0);
    for qa in fx.surface.grid().iter().step_by(7) {
        let run = |sb: &mut SpillBound<'_>| {
            let mut o = CostOracle::at_grid(&fx.opt, fx.surface.grid(), qa);
            sb.run(&mut o).unwrap()
        };
        let (a, b) = (run(&mut sb1), run(&mut sb2));
        assert_eq!(a.total_cost, b.total_cost);
        assert_eq!(a.executions(), b.executions());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.plan_fingerprint, y.plan_fingerprint);
            assert_eq!(x.budget, y.budget);
        }
        let runa = |ab: &mut AlignedBound<'_>| {
            let mut o = CostOracle::at_grid(&fx.opt, fx.surface.grid(), qa);
            ab.run(&mut o).unwrap()
        };
        let (a, b) = (runa(&mut ab1), runa(&mut ab2));
        assert_eq!(a.total_cost, b.total_cost);
        assert_eq!(a.executions(), b.executions());
    }
}

#[test]
fn accounting_verifies_on_the_example_query() {
    let fx = eq_fixture(12);
    let mut sb = SpillBound::new(&fx.surface, &fx.opt, 2.0);
    for qa in fx.surface.grid().iter() {
        let mut oracle = CostOracle::at_grid(&fx.opt, fx.surface.grid(), qa);
        let report = sb.run(&mut oracle).unwrap();
        verify_spillbound_run(&report, 2)
            .unwrap_or_else(|e| panic!("qa {:?}: {e}", fx.surface.grid().coords(qa)));
    }
}

#[test]
fn memoized_and_fresh_instances_agree() {
    // An instance that has already swept many locations (warm caches) must
    // behave identically to a cold one.
    let fx = eq_fixture(10);
    let mut warm = SpillBound::new(&fx.surface, &fx.opt, 2.0);
    for qa in fx.surface.grid().iter() {
        let mut o = CostOracle::at_grid(&fx.opt, fx.surface.grid(), qa);
        warm.run(&mut o).unwrap();
    }
    for qa in fx.surface.grid().iter().step_by(11) {
        let mut cold = SpillBound::new(&fx.surface, &fx.opt, 2.0);
        let mut o1 = CostOracle::at_grid(&fx.opt, fx.surface.grid(), qa);
        let mut o2 = CostOracle::at_grid(&fx.opt, fx.surface.grid(), qa);
        let a = warm.run(&mut o1).unwrap();
        let b = cold.run(&mut o2).unwrap();
        assert_eq!(a.total_cost, b.total_cost, "warm vs cold divergence");
    }
}

#[test]
fn filter_epps_are_discoverable_too() {
    // The paper's EQ notes the price filter *could* be error-prone; our
    // machinery supports filter epps (the spill node is then a scan).
    // Re-dimension EQ with (join, filter) epps and check SB end-to-end.
    let catalog: &'static _ = Box::leak(Box::new(tpch::catalog(0.5)));
    let mut query = example_query_eq(catalog);
    // predicates: [p⋈l join, o⋈l join, p_retailprice<=999 filter]
    query.epps = vec![0, 2];
    let query: &'static _ = Box::leak(Box::new(query));
    query.validate(catalog).unwrap();
    let opt = Optimizer::new(
        catalog,
        query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("filter-epp EQ valid");
    let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-5, 9));
    surface.check_monotone().unwrap();
    let mut sb = SpillBound::new(&surface, &opt, 2.0);
    for qa in surface.grid().iter() {
        let mut oracle = CostOracle::at_grid(&opt, surface.grid(), qa);
        let report = sb.run(&mut oracle).expect("SB completes with a filter epp");
        let sub = report.sub_optimality(surface.opt_cost(qa));
        assert!(
            sub <= spillbound_guarantee_ratio(2, 2.0) * (1.0 + 1e-6),
            "qa {:?}: {sub}",
            surface.grid().coords(qa)
        );
        // learnt filter selectivity (dim 1) must equal the truth when learnt
        if let Some(s) = report.learnt[1] {
            let truth = surface.grid().sel_at(qa, 1);
            assert!((s - truth).abs() <= 1e-12);
        }
    }
}
