//! Integration tests: the execution engine against the discovery stack.
//!
//! These exercise the full loop the paper's modified PostgreSQL performs:
//! real budgeted/spill-mode executions over materialized data, driving
//! SpillBound/AlignedBound end-to-end, and cross-checking the
//! executor-backed oracle against the analytical cost oracle.

use rqp::catalog::tpcds;
use rqp::core::{AlignedBound, SpillBound};
use rqp::ess::EssSurface;
use rqp::executor::{DataStore, Executor};
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp::runner::{measure_qa, ExecOracle};
use rqp::workloads::{executable_genspec, executable_genspec_with_errors, q91_with_dims};
use rqp_catalog::DataSet;
use rqp_common::MultiGrid;

struct Fixture {
    catalog: &'static rqp::catalog::Catalog,
    query: &'static rqp::optimizer::QuerySpec,
    store: DataStore,
}

fn fixture(scale: f64, dims: usize, errors: Option<&[f64]>) -> Fixture {
    let catalog: &'static _ = Box::leak(Box::new(tpcds::catalog(scale)));
    let bench = q91_with_dims(catalog, dims);
    let query: &'static _ = Box::leak(Box::new(bench.query.clone()));
    let spec = match errors {
        Some(e) => executable_genspec_with_errors(catalog, query, 42, e),
        None => executable_genspec(catalog, query, 42),
    };
    let data = DataSet::generate(catalog, &spec).expect("generate");
    let store = DataStore::new(catalog, data);
    Fixture {
        catalog,
        query,
        store,
    }
}

#[test]
fn spillbound_completes_with_real_executor() {
    let fx = fixture(0.05, 2, Some(&[50.0, 20.0]));
    let opt = Optimizer::new(
        fx.catalog,
        fx.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .unwrap();
    let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, 12));
    let mut sb = SpillBound::new(&surface, &opt, 2.0);
    let exec = Executor::new(fx.catalog, fx.query, &fx.store, CostParams::default());
    let mut oracle = ExecOracle::new(exec, &opt, surface.grid());
    let report = sb.run(&mut oracle).expect("SB completes on real engine");
    assert!(report.completed);
    assert!(report.total_cost > 0.0);
    assert_eq!(oracle.timings.len(), report.executions());
}

#[test]
fn alignedbound_completes_with_real_executor() {
    let fx = fixture(0.05, 2, Some(&[50.0, 20.0]));
    let opt = Optimizer::new(
        fx.catalog,
        fx.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .unwrap();
    let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, 12));
    let mut ab = AlignedBound::new(&surface, &opt, 2.0);
    let exec = Executor::new(fx.catalog, fx.query, &fx.store, CostParams::default());
    let mut oracle = ExecOracle::new(exec, &opt, surface.grid());
    let report = ab.run(&mut oracle).expect("AB completes on real engine");
    assert!(report.completed);
}

#[test]
fn real_runs_learn_true_selectivities() {
    let fx = fixture(0.05, 2, Some(&[100.0, 10.0]));
    let opt = Optimizer::new(
        fx.catalog,
        fx.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .unwrap();
    let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, 12));
    let qa = measure_qa(&fx.store, fx.query);
    let mut sb = SpillBound::new(&surface, &opt, 2.0);
    let exec = Executor::new(fx.catalog, fx.query, &fx.store, CostParams::default());
    let mut oracle = ExecOracle::new(exec, &opt, surface.grid());
    let report = sb.run(&mut oracle).expect("completes");
    for (j, learnt) in report.learnt.iter().enumerate() {
        if let Some(s) = learnt {
            let truth = qa[j];
            // Observed selectivities are conditioned on the spilled
            // subtree's filtered inputs; with skew-injected data that
            // legitimately deviates a little from the marginal truth.
            assert!(
                (s - truth).abs() / truth < 0.2,
                "dim {j}: learnt {s} vs measured truth {truth}"
            );
        }
    }
}

#[test]
fn executor_result_counts_are_plan_invariant() {
    // Robustness cornerstone: whatever plan discovery executes, the final
    // result is the same relation.
    let fx = fixture(0.03, 2, None);
    let opt = Optimizer::new(
        fx.catalog,
        fx.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .unwrap();
    let exec = Executor::new(fx.catalog, fx.query, &fx.store, CostParams::default());
    let mut counts = Vec::new();
    for sels in [[1e-6, 1e-6], [1e-3, 1e-2], [0.5, 0.9]] {
        let (plan, _) = opt.optimize_at(&sels);
        let out = exec.run_full(&plan, f64::INFINITY).expect("runs");
        assert!(out.completed);
        counts.push(out.rows_out);
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "plans disagree on the result: {counts:?}"
    );
}

#[test]
fn budget_timeouts_discard_results_and_charge_budget() {
    let fx = fixture(0.03, 2, None);
    let opt = Optimizer::new(
        fx.catalog,
        fx.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .unwrap();
    let exec = Executor::new(fx.catalog, fx.query, &fx.store, CostParams::default());
    let (plan, _) = opt.optimize_at(&[1e-3, 1e-3]);
    let full = exec.run_full(&plan, f64::INFINITY).expect("runs");
    let tiny = full.spent * 0.1;
    let out = exec.run_full(&plan, tiny).expect("runs");
    assert!(!out.completed);
    assert_eq!(out.rows_out, 0);
    assert!((out.spent - tiny).abs() < 1e-9);
}

#[test]
fn cost_oracle_and_exec_oracle_agree_on_plan_choices() {
    // With data generated to match the statistics, both oracles should
    // drive SpillBound through the same contour progression.
    let fx = fixture(0.05, 2, None);
    let opt = Optimizer::new(
        fx.catalog,
        fx.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .unwrap();
    let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, 10));
    let qa = measure_qa(&fx.store, fx.query);

    let mut sb = SpillBound::new(&surface, &opt, 2.0);
    let exec = Executor::new(fx.catalog, fx.query, &fx.store, CostParams::default());
    let mut real = ExecOracle::new(exec, &opt, surface.grid());
    let real_report = sb.run(&mut real).expect("real completes");

    let mut cost = rqp::core::CostOracle::new(&opt, surface.grid(), &qa);
    let cost_report = sb.run(&mut cost).expect("cost completes");

    // Same final contour within one step (metering vs model wobble).
    let rc = real_report.last_contour().unwrap() as i64;
    let cc = cost_report.last_contour().unwrap() as i64;
    assert!(
        (rc - cc).abs() <= 1,
        "real finished at contour {rc}, cost model at {cc}"
    );
}
