//! Integration tests: the paper's MSO guarantees hold exhaustively on the
//! real TPC-DS workloads (cost-based oracle, small grids for speed).

use rqp::catalog::tpcds;
use rqp::core::{
    aligned_guarantee_lower, spillbound_guarantee, AlignedBound, CostOracle, PlanBouquet,
    SpillBound,
};
use rqp::ess::{ContourSet, EssSurface, EssView};
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp::workloads::tpcds_queries as q;
use rqp_common::MultiGrid;

fn build(
    catalog: &rqp::catalog::Catalog,
    query: &rqp::optimizer::QuerySpec,
    n: usize,
) -> (Optimizer<'static>, EssSurface) {
    // Tests leak the catalog/query to get 'static lifetimes; fine for a
    // test process.
    let catalog: &'static _ = Box::leak(Box::new(catalog.clone()));
    let query: &'static _ = Box::leak(Box::new(query.clone()));
    let opt = Optimizer::new(
        catalog,
        query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("valid");
    let grid = MultiGrid::uniform(query.ndims(), 1e-7, n);
    let surface = EssSurface::build(&opt, grid);
    (opt, surface)
}

#[test]
fn spillbound_guarantee_holds_exhaustively_on_q15() {
    let catalog = tpcds::catalog_sf100();
    let query = q::q15(&catalog);
    let (opt, surface) = build(&catalog, &query, 7);
    let mut sb = SpillBound::new(&surface, &opt, 2.0);
    let bound = spillbound_guarantee(3);
    for qa in surface.grid().iter() {
        let mut oracle = CostOracle::at_grid(&opt, surface.grid(), qa);
        let report = sb.run(&mut oracle).expect("SB completes");
        assert!(report.completed);
        let sub = report.sub_optimality(surface.opt_cost(qa));
        assert!(
            sub <= bound * (1.0 + 1e-6),
            "qa {:?}: {sub} > {bound}",
            surface.grid().coords(qa)
        );
    }
}

#[test]
fn alignedbound_guarantee_holds_exhaustively_on_q96() {
    let catalog = tpcds::catalog_sf100();
    let query = q::q96(&catalog);
    let (opt, surface) = build(&catalog, &query, 7);
    let mut ab = AlignedBound::new(&surface, &opt, 2.0);
    let bound = spillbound_guarantee(3);
    let mut best_seen = f64::MAX;
    for qa in surface.grid().iter() {
        let mut oracle = CostOracle::at_grid(&opt, surface.grid(), qa);
        let report = ab.run(&mut oracle).expect("AB completes");
        let sub = report.sub_optimality(surface.opt_cost(qa));
        assert!(sub <= bound * (1.0 + 1e-6));
        best_seen = best_seen.min(sub);
    }
    // Sanity: somewhere in the space discovery is cheap.
    assert!(best_seen < aligned_guarantee_lower(3));
}

#[test]
fn planbouquet_guarantee_holds_exhaustively_on_q7() {
    let catalog = tpcds::catalog_sf100();
    let query = q::q7(&catalog);
    let (opt, surface) = build(&catalog, &query, 5);
    let pb = PlanBouquet::new(&surface, &opt, 2.0, 0.2);
    let bound = pb.mso_guarantee();
    for qa in surface.grid().iter() {
        let mut oracle = CostOracle::at_grid(&opt, surface.grid(), qa);
        let report = pb.run(&mut oracle).expect("PB completes");
        let sub = report.sub_optimality(surface.opt_cost(qa));
        assert!(sub <= bound * (1.0 + 1e-6), "{sub} > {bound}");
    }
}

#[test]
fn optimal_cost_surfaces_are_monotone_for_the_suite() {
    let catalog = tpcds::catalog_sf100();
    for query in [q::q15(&catalog), q::q96(&catalog), q::q91(&catalog, 3)] {
        let (_, surface) = build(&catalog, &query, 6);
        surface
            .check_monotone()
            .unwrap_or_else(|e| panic!("{}: {e}", query.name));
    }
}

#[test]
fn contour_covering_holds_on_real_workload() {
    let catalog = tpcds::catalog_sf100();
    let query = q::q91(&catalog, 3);
    let (_, surface) = build(&catalog, &query, 6);
    let contours = ContourSet::build(&surface, 2.0);
    let view = EssView::full(3);
    for i in 0..contours.len() {
        let frontier = contours.locations(&surface, &view, i);
        for qa in surface.grid().iter() {
            if surface.opt_cost(qa) <= contours.cost(i) {
                assert!(
                    frontier.iter().any(|&f| surface.grid().dominates_eq(f, qa)),
                    "contour {i} misses {:?}",
                    surface.grid().coords(qa)
                );
            }
        }
    }
}

#[test]
fn learnt_selectivities_are_exact_on_q26() {
    let catalog = tpcds::catalog_sf100();
    let query = q::q26(&catalog);
    let (opt, surface) = build(&catalog, &query, 5);
    let mut sb = SpillBound::new(&surface, &opt, 2.0);
    // A handful of interior locations.
    for coords in [[2, 3, 1, 4], [4, 4, 4, 4], [0, 2, 3, 1]] {
        let qa = surface.grid().flat(&coords);
        let mut oracle = CostOracle::at_grid(&opt, surface.grid(), qa);
        let report = sb.run(&mut oracle).expect("completes");
        for (j, learnt) in report.learnt.iter().enumerate() {
            if let Some(s) = learnt {
                let truth = surface.grid().sel_at(qa, j);
                assert!(
                    (s - truth).abs() <= 1e-12,
                    "dim {j}: learnt {s} vs truth {truth}"
                );
            }
        }
    }
}

#[test]
fn spillbound_beats_planbouquet_empirically_on_q91_4d() {
    let catalog = tpcds::catalog_sf100();
    let query = q::q91(&catalog, 4);
    let (opt, surface) = build(&catalog, &query, 5);
    let sb = rqp::core::eval::evaluate_spillbound(&surface, &opt, 2.0).unwrap();
    let pb = rqp::core::eval::evaluate_planbouquet_fast(&surface, &opt, 2.0, 0.2).unwrap();
    // Fig. 10's shape: SB's empirical MSO does not lose to PB's.
    assert!(
        sb.mso <= pb.mso * 1.1,
        "SB MSOe {} vs PB MSOe {}",
        sb.mso,
        pb.mso
    );
    // Fig. 11's shape: nor does its average case.
    assert!(
        sb.aso <= pb.aso * 1.1,
        "SB ASO {} vs PB ASO {}",
        sb.aso,
        pb.aso
    );
}
