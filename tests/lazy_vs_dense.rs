//! Dense-vs-lazy differential suite: the lazy, contour-only ESS path
//! must be *indistinguishable* from the dense one wherever both are
//! defined — identical contour location sets, identical anorexic-reduced
//! bouquets (compared by plan fingerprint; raw plan ids differ because
//! the lazy pool interns in materialization order), and bit-equal
//! SB/AB/PB MSOe sweeps — while materializing only a fraction of the
//! grid in its discovery-only mode.

use proptest::prelude::*;
use rqp::catalog::tpcds;
use rqp::core::eval::{evaluate_alignedbound, evaluate_planbouquet, evaluate_spillbound};
use rqp::core::{CostOracle, SelectionMode, SpillBound, SubOptStats};
use rqp::ess::anorexic::reduce_all;
use rqp::ess::{ContourSet, EssSurface, EssView, LazySurface, SurfaceAccess};
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp::workloads::{paper_suite, q91_with_dims, BenchQuery};

/// The 2D/3D identity workload at debug-tractable resolutions.
fn identity_benches() -> Vec<BenchQuery> {
    let catalog = tpcds::catalog_sf100();
    let mut out = vec![q91_with_dims(&catalog, 2).with_grid_points(12)];
    out.extend(
        paper_suite(&catalog)
            .into_iter()
            .filter(|b| b.query.ndims() == 3)
            .map(|b| b.with_grid_points(6)),
    );
    assert!(out.len() >= 3, "expected 2D_Q91 plus the 3D suite queries");
    out
}

fn optimizer_for<'a>(catalog: &'a rqp::catalog::Catalog, bench: &'a BenchQuery) -> Optimizer<'a> {
    Optimizer::new(
        catalog,
        &bench.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("suite query valid")
}

fn bit_equal(a: &SubOptStats, b: &SubOptStats) -> bool {
    a.mso.to_bits() == b.mso.to_bits()
        && a.aso.to_bits() == b.aso.to_bits()
        && a.worst_qa == b.worst_qa
        && a.subopts.len() == b.subopts.len()
        && a.subopts
            .iter()
            .zip(&b.subopts)
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Contour schedules and per-contour location sets agree exactly: the
/// lazy per-fiber binary-search skyline enumerates the same maximal
/// locations the dense exact predicate keeps.
#[test]
fn lazy_contour_locations_match_dense() {
    let catalog = tpcds::catalog_sf100();
    for bench in identity_benches() {
        let opt = optimizer_for(&catalog, &bench);
        let dense = EssSurface::build(&opt, bench.grid());
        let lazy = LazySurface::new(&opt, bench.grid());
        let dc = ContourSet::build(&dense, 2.0);
        let lc = ContourSet::build(&lazy, 2.0);
        assert_eq!(
            dc.len(),
            lc.len(),
            "{}: contour counts differ",
            bench.name()
        );
        for (a, b) in dc.costs().iter().zip(lc.costs()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: contour costs differ",
                bench.name()
            );
        }
        let view = EssView::full(bench.query.ndims());
        for i in 0..dc.len() {
            let mut dl = dc.locations(&dense, &view, i);
            let mut ll = lc.locations(&lazy, &view, i);
            dl.sort_unstable();
            ll.sort_unstable();
            assert_eq!(
                dl,
                ll,
                "{}: contour {i} location sets differ (dense {} vs lazy {})",
                bench.name(),
                dl.len(),
                ll.len()
            );
        }
    }
}

/// Anorexic reduction picks the same bouquet on both paths. Plan ids are
/// pool-local (the lazy pool interns in materialization order), so the
/// comparison is by plan fingerprint, per contour, in selection order.
#[test]
fn lazy_anorexic_bouquets_match_dense() {
    let catalog = tpcds::catalog_sf100();
    for bench in identity_benches() {
        let opt = optimizer_for(&catalog, &bench);
        let dense = EssSurface::build(&opt, bench.grid());
        let lazy = LazySurface::new(&opt, bench.grid());
        let dc = ContourSet::build(&dense, 2.0);
        let lc = ContourSet::build(&lazy, 2.0);
        let (dr, d_rho) = reduce_all(&dense, &opt, &dc, 0.2);
        let (lr, l_rho) = reduce_all(&lazy, &opt, &lc, 0.2);
        assert_eq!(d_rho, l_rho, "{}: rho_red differs", bench.name());
        assert_eq!(dr.len(), lr.len());
        for (i, (a, b)) in dr.iter().zip(&lr).enumerate() {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            let da: Vec<u64> = a
                .plans
                .iter()
                .map(|&pid| SurfaceAccess::plan_clone(&dense, pid).fingerprint())
                .collect();
            let lb: Vec<u64> = b
                .plans
                .iter()
                .map(|&pid| SurfaceAccess::plan_clone(&lazy, pid).fingerprint())
                .collect();
            assert_eq!(da, lb, "{}: contour {i} bouquet differs", bench.name());
        }
    }
}

/// The exhaustive MSOe sweeps — SpillBound, AlignedBound, PlanBouquet —
/// are bit-equal between the dense surface and a lazy surface (which
/// materializes cells on demand as the sweep touches them).
#[test]
fn lazy_msoe_reports_bit_equal_to_dense() {
    let catalog = tpcds::catalog_sf100();
    for bench in identity_benches() {
        let opt = optimizer_for(&catalog, &bench);
        let dense = EssSurface::build(&opt, bench.grid());
        let lazy = LazySurface::new(&opt, bench.grid());

        let d_sb = evaluate_spillbound(&dense, &opt, 2.0).unwrap();
        let l_sb = evaluate_spillbound(&lazy, &opt, 2.0).unwrap();
        assert!(
            bit_equal(&d_sb, &l_sb),
            "{}: SB MSOe diverged",
            bench.name()
        );

        let (d_ab, d_pen) = evaluate_alignedbound(&dense, &opt, 2.0).unwrap();
        let (l_ab, l_pen) = evaluate_alignedbound(&lazy, &opt, 2.0).unwrap();
        assert!(
            bit_equal(&d_ab, &l_ab),
            "{}: AB MSOe diverged",
            bench.name()
        );
        assert_eq!(d_pen.to_bits(), l_pen.to_bits());

        let d_pb = evaluate_planbouquet(&dense, &opt, 2.0, 0.2).unwrap();
        let l_pb = evaluate_planbouquet(&lazy, &opt, 2.0, 0.2).unwrap();
        assert!(
            bit_equal(&d_pb, &l_pb),
            "{}: PB MSOe diverged",
            bench.name()
        );
    }
}

/// The hard call bound on the discovery path 2D/3D queries actually
/// compile with: contour schedule plus the full axis-probe warm-up, at
/// the lazy (high) resolutions, stays well under the grid size. (Note
/// the *identity* tests above deliberately materialize everything — the
/// union of all contour skylines covers most of the grid on real cost
/// surfaces, which is exactly why the compile path probes fibers instead
/// of enumerating skylines.)
#[test]
fn lazy_discovery_call_budget_on_low_dims() {
    let catalog = tpcds::catalog_sf100();
    for d in [2usize, 3] {
        let bench =
            q91_with_dims(&catalog, d).with_grid_points(rqp::workloads::suite::lazy_grid_points(d));
        let opt = optimizer_for(&catalog, &bench);
        let n = bench.grid_points;
        let lazy = LazySurface::new(&opt, bench.grid());
        let _contours = ContourSet::build(&lazy, 2.0);
        let mut sb = SpillBound::with_mode(&lazy, &opt, 2.0, SelectionMode::AxisProbe);
        for coords in warmup_coords(d, n) {
            let qa = lazy.grid().flat(&coords);
            let mut oracle = CostOracle::at_grid(&opt, lazy.grid(), qa);
            sb.run(&mut oracle).unwrap();
        }
        let grid_len = lazy.grid().len();
        let calls = lazy.optimizer_calls();
        assert!(
            calls as f64 <= 0.2 * grid_len as f64,
            "{}: {calls} optimizer calls exceed 20% of the {grid_len}-cell grid",
            bench.name()
        );
        assert_eq!(lazy.cells_materialized() as u64, calls);
    }
}

/// The deterministic warm-up sample the lazy compile path uses.
fn warmup_coords(d: usize, n: usize) -> Vec<Vec<usize>> {
    let mut sample = vec![vec![0; d], vec![n - 1; d], vec![n / 2; d]];
    for j in 0..d {
        let mut lo = vec![0; d];
        lo[j] = n - 1;
        let mut hi = vec![n - 1; d];
        hi[j] = 0;
        sample.push(lo);
        sample.push(hi);
    }
    sample
}

/// The acceptance bound, test-asserted: on every 4D+ suite query at its
/// default resolution, axis-probe SpillBound discovery (contour schedule
/// plus a full warm-up sweep) spends at most 20% of the dense
/// optimizer-call budget — and each sampled run is sound: it completes
/// and never overshoots the truth. (Axis-probe pruning is weaker than
/// the exact skyline selections, so the D²+3D bound is *not* asserted
/// here — it belongs to `SelectionMode::Exact`, which the bit-equality
/// tests above cover.)
#[test]
fn lazy_axis_probe_call_budget_on_high_dims() {
    let catalog = tpcds::catalog_sf100();
    for bench in paper_suite(&catalog)
        .into_iter()
        .filter(|b| b.query.ndims() >= 4)
    {
        let opt = optimizer_for(&catalog, &bench);
        let d = bench.query.ndims();
        let n = bench.grid_points;
        let lazy = LazySurface::new(&opt, bench.grid());
        let _contours = ContourSet::build(&lazy, 2.0);
        let mut sb = SpillBound::with_mode(&lazy, &opt, 2.0, SelectionMode::AxisProbe);
        for coords in warmup_coords(d, n) {
            let qa = lazy.grid().flat(&coords);
            let mut oracle = CostOracle::at_grid(&opt, lazy.grid(), qa);
            let report = sb.run(&mut oracle).unwrap();
            assert!(
                report.completed,
                "{}: run at {coords:?} did not complete",
                bench.name()
            );
            for (j, learnt) in report.learnt.iter().enumerate() {
                if let Some(s) = learnt {
                    let truth = lazy.grid().sel_at(qa, j);
                    assert!(
                        *s <= truth * (1.0 + 1e-9),
                        "{}: learnt e{j} = {s} overshoots truth {truth}",
                        bench.name()
                    );
                }
            }
        }
        let grid_len = lazy.grid().len();
        let calls = lazy.optimizer_calls();
        assert!(
            calls as f64 <= 0.2 * grid_len as f64,
            "{}: {calls} optimizer calls exceed 20% of the {grid_len}-cell grid",
            bench.name()
        );
    }
}

proptest! {
    // Randomized differential coverage on top of the fixed suite: random
    // resolutions and selectivity floors, same identity requirements.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lazy_matches_dense_on_random_grids(
        n in 5usize..9,
        min_exp in 5u32..8,
    ) {
        let catalog = tpcds::catalog_sf100();
        let bench = q91_with_dims(&catalog, 2);
        let opt = optimizer_for(&catalog, &bench);
        let min_sel = 10f64.powi(-(min_exp as i32));
        let grid = rqp_common::MultiGrid::uniform(2, min_sel, n);
        let dense = EssSurface::build(&opt, grid.clone());
        let lazy = LazySurface::new(&opt, grid);
        let dc = ContourSet::build(&dense, 2.0);
        let lc = ContourSet::build(&lazy, 2.0);
        prop_assert_eq!(dc.len(), lc.len());
        let view = EssView::full(2);
        for i in 0..dc.len() {
            let mut dl = dc.locations(&dense, &view, i);
            let mut ll = lc.locations(&lazy, &view, i);
            dl.sort_unstable();
            ll.sort_unstable();
            prop_assert_eq!(dl, ll, "contour {} location sets differ", i);
        }
        let d_sb = evaluate_spillbound(&dense, &opt, 2.0).unwrap();
        let l_sb = evaluate_spillbound(&lazy, &opt, 2.0).unwrap();
        prop_assert!(bit_equal(&d_sb, &l_sb), "SB MSOe diverged on a random grid");
    }
}
