//! Golden paper-conformance suite.
//!
//! Pins the paper-facing numbers for the shipped 2D/4D Q91 workloads —
//! POSP size, iso-cost contour count, anorexic-reduced bouquet size
//! (ρ_red), and the empirical MSO of each algorithm — against the
//! checked-in `tests/golden/paper_conformance.json`, plus a lazily-built
//! high-resolution entry (6D_Q18 at 16 points/dim — 16.7M grid cells, a
//! resolution the dense path cannot reach in test time): contour count,
//! materialized-cell and optimizer-call counts, the anorexic density of
//! the first contours, and sampled SpillBound sub-optimality. Any drift
//! in the optimizer, contour geometry, or discovery algorithms fails the
//! test with a diff; regenerate intentionally with
//!
//! ```text
//! RQP_BLESS=1 cargo test --test paper_conformance
//! ```
//!
//! Alongside the golden comparison, the SpillBound bound is asserted
//! per query location: every sub-optimality must stay within D²+3D.

use rqp::catalog::tpcds;
use rqp::core::{
    eval::{evaluate_alignedbound_ctx, evaluate_planbouquet_ctx, evaluate_spillbound_ctx},
    spillbound_guarantee, AlignedBound, CostOracle, EvalContext, PlanBouquet, SpillBound,
};
use rqp::ess::anorexic::reduce_contour;
use rqp::ess::{ContourSet, EssSurface, EssView, LazySurface, SurfaceAccess};
use rqp::executor::{DataStore, Engine, Executor};
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp::runner::ExecOracle;
use rqp::workloads::{executable_genspec_with_errors, paper_suite, q91_with_dims};
use rqp_catalog::DataSet;
use rqp_common::MultiGrid;
use std::fmt::Write as _;
use std::path::PathBuf;

const RATIO: f64 = 2.0;
const LAMBDA: f64 = 0.2;

/// One workload's pinned numbers, in golden-file order. Dense entries
/// fill the exhaustive-sweep fields; the lazy entry fills the
/// materialization accounting and sampled fields instead.
struct Conformance {
    name: String,
    grid_points: usize,
    posp_size: Option<usize>,
    contours: usize,
    rho_red: Option<usize>,
    msoe_sb: Option<f64>,
    msoe_ab: Option<f64>,
    msoe_pb: Option<f64>,
    cells_materialized: Option<usize>,
    optimizer_calls: Option<u64>,
    rho_red_prefix: Option<usize>,
    msoe_sb_sample: Option<f64>,
}

/// Runs the full pipeline for Q91 at dimensionality `d` on a reduced
/// grid (debug-mode tractable) and collects the conformance numbers.
fn measure(d: usize, grid_points: usize, with_ab: bool) -> Conformance {
    let catalog = tpcds::catalog_sf100();
    let mut bench = q91_with_dims(&catalog, d);
    bench.grid_points = grid_points;
    let name = bench.name().to_string();
    let opt = Optimizer::new(
        &catalog,
        &bench.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("valid query");
    let surface = EssSurface::build(&opt, bench.grid());
    let ctx = EvalContext::with_threads(&surface, &opt, 1);
    let pb = PlanBouquet::new(&surface, &opt, RATIO, LAMBDA);

    let sb_stats = evaluate_spillbound_ctx(&ctx, RATIO).expect("SB sweep");
    // Satellite guarantee check: D²+3D per location, not just globally.
    let bound = spillbound_guarantee(d);
    for (qa, sub) in sb_stats.subopts.iter().enumerate() {
        assert!(
            *sub <= bound * (1.0 + 1e-6),
            "{name}: SB sub-optimality {sub} at location {qa} exceeds D²+3D = {bound}"
        );
    }
    let msoe_ab = with_ab.then(|| {
        let (ab_stats, _) = evaluate_alignedbound_ctx(&ctx, RATIO).expect("AB sweep");
        for (qa, sub) in ab_stats.subopts.iter().enumerate() {
            assert!(
                *sub <= bound * (1.0 + 1e-6),
                "{name}: AB sub-optimality {sub} at location {qa} exceeds D²+3D = {bound}"
            );
        }
        ab_stats.mso
    });
    let pb_stats = evaluate_planbouquet_ctx(&ctx, RATIO, LAMBDA).expect("PB sweep");

    Conformance {
        name,
        grid_points,
        posp_size: Some(surface.posp_size()),
        contours: pb.contours().len(),
        rho_red: Some(pb.rho_red()),
        msoe_sb: Some(sb_stats.mso),
        msoe_ab,
        msoe_pb: Some(pb_stats.mso),
        cells_materialized: None,
        optimizer_calls: None,
        rho_red_prefix: None,
        msoe_sb_sample: None,
    }
}

/// The lazy high-resolution entry: 6D_Q18 at 16 points/dim. The dense
/// pipeline cannot build this grid (16.7M optimizer calls); the lazy
/// path pins instead:
///
/// * the contour count of the 16^6 schedule,
/// * ρ of the anorexic reduction over the first three contour skylines
///   (level sets near `cmin` are small, so their skylines are cheap),
/// * exact-mode SpillBound sub-optimality at a deterministic low-contour
///   qa sample, each run asserted within D²+3D,
/// * the total cells materialized / optimizer calls after all of the
///   above — the lazy path's entire cost, pinned so a regression that
///   silently densifies discovery fails the golden diff.
fn measure_lazy_6d(grid_points: usize) -> Conformance {
    let catalog = tpcds::catalog_sf100();
    let bench = paper_suite(&catalog)
        .into_iter()
        .find(|b| b.name() == "6D_Q18")
        .expect("6D_Q18 in the suite")
        .with_grid_points(grid_points);
    let d = bench.query.ndims();
    let opt = Optimizer::new(
        &catalog,
        &bench.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("valid query");
    let lazy = LazySurface::new(&opt, bench.grid());
    let contours = ContourSet::build(&lazy, RATIO);
    let view = EssView::full(d);

    let mut rho_red_prefix = 0usize;
    for i in 0..3.min(contours.len()) {
        let locs = contours.locations(&lazy, &view, i);
        assert!(!locs.is_empty(), "contour {i} has an empty skyline");
        let reduced = reduce_contour(&lazy, &opt, &locs, contours.cost(i), LAMBDA);
        rho_red_prefix = rho_red_prefix.max(reduced.plans.len());
    }

    // Deterministic low-contour sample: exact-mode SpillBound only
    // enumerates the skylines of the contours a run actually crosses,
    // which stay near the origin for these locations.
    let sample: [[usize; 6]; 6] = [
        [0, 0, 0, 0, 0, 0],
        [1, 1, 1, 1, 1, 1],
        [2, 2, 2, 2, 2, 2],
        [3, 0, 0, 0, 0, 0],
        [0, 0, 0, 0, 0, 3],
        [1, 2, 0, 1, 0, 2],
    ];
    let bound = spillbound_guarantee(d);
    let mut sb = SpillBound::new(&lazy, &opt, RATIO);
    let mut msoe_sb_sample = 0.0f64;
    for coords in &sample {
        let qa = lazy.grid().flat(coords);
        let mut oracle = CostOracle::at_grid(&opt, lazy.grid(), qa);
        let report = sb.run(&mut oracle).expect("discovery completes");
        assert!(
            report.completed,
            "6D_Q18 lazy: run at {coords:?} incomplete"
        );
        let sub = report.sub_optimality(lazy.opt_cost(qa));
        assert!(
            sub <= bound * (1.0 + 1e-6),
            "6D_Q18 lazy: SB sub-optimality {sub} at {coords:?} exceeds D²+3D = {bound}"
        );
        msoe_sb_sample = msoe_sb_sample.max(sub);
    }

    Conformance {
        name: "6D_Q18_lazy".into(),
        grid_points,
        posp_size: None,
        contours: contours.len(),
        rho_red: None,
        msoe_sb: None,
        msoe_ab: None,
        msoe_pb: None,
        cells_materialized: Some(lazy.cells_materialized()),
        optimizer_calls: Some(lazy.optimizer_calls()),
        rho_red_prefix: Some(rho_red_prefix),
        msoe_sb_sample: Some(msoe_sb_sample),
    }
}

/// Shortest-round-trip float rendering, matching the JSONL trace format.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn render(rows: &[Conformance]) -> String {
    let mut out = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        let mut fields: Vec<(&str, String)> = vec![("grid_points", r.grid_points.to_string())];
        if let Some(v) = r.posp_size {
            fields.push(("posp_size", v.to_string()));
        }
        fields.push(("contours", r.contours.to_string()));
        if let Some(v) = r.rho_red {
            fields.push(("rho_red", v.to_string()));
        }
        if let Some(v) = r.msoe_sb {
            fields.push(("msoe_sb", fmt_f64(v)));
        }
        if let Some(v) = r.msoe_ab {
            fields.push(("msoe_ab", fmt_f64(v)));
        }
        if let Some(v) = r.msoe_pb {
            fields.push(("msoe_pb", fmt_f64(v)));
        }
        if let Some(v) = r.cells_materialized {
            fields.push(("cells_materialized", v.to_string()));
        }
        if let Some(v) = r.optimizer_calls {
            fields.push(("optimizer_calls", v.to_string()));
        }
        if let Some(v) = r.rho_red_prefix {
            fields.push(("rho_red_prefix", v.to_string()));
        }
        if let Some(v) = r.msoe_sb_sample {
            fields.push(("msoe_sb_sample", fmt_f64(v)));
        }
        let _ = writeln!(out, "  \"{}\": {{", r.name);
        for (k, (key, value)) in fields.iter().enumerate() {
            let comma = if k + 1 < fields.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{key}\": {value}{comma}");
        }
        let _ = writeln!(out, "  }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    out.push_str("}\n");
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/paper_conformance.json")
}

/// Executor-backed discovery golden: full SB and AB runs over the
/// executable 2D_Q91 workload, serialized with exact floats (shortest
/// round-trip rendering), pinned in `tests/golden/batch_discovery.json`.
/// Both the row engine and the vectorized [`Engine`] must reproduce the
/// checked-in bytes — the batch engine cannot drift a single budget,
/// spent cost, or learnt selectivity that the goldens pin, so switching
/// engines never forces a re-bless. Regenerate intentionally with
/// `RQP_BLESS=1 cargo test --test paper_conformance batch_engine`.
#[test]
fn batch_engine_discovery_matches_golden() {
    let catalog = tpcds::catalog(0.05);
    let bench = q91_with_dims(&catalog, 2);
    let query = &bench.query;
    let spec = executable_genspec_with_errors(&catalog, query, 42, &[50.0, 20.0]);
    let data = DataSet::generate(&catalog, &spec).expect("generate");
    let store = DataStore::new(&catalog, data);
    let opt = Optimizer::new(
        &catalog,
        query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("valid query");
    let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, 6));

    let discover = |batch: bool| -> String {
        let mut out = String::new();
        for algo in ["sb", "ab"] {
            let report = if batch {
                let exec = Engine::new(&catalog, query, &store, CostParams::default());
                let mut oracle = ExecOracle::new(exec, &opt, surface.grid());
                match algo {
                    "sb" => SpillBound::new(&surface, &opt, RATIO).run(&mut oracle),
                    _ => AlignedBound::new(&surface, &opt, RATIO).run(&mut oracle),
                }
            } else {
                let exec = Executor::new(&catalog, query, &store, CostParams::default());
                let mut oracle = ExecOracle::new(exec, &opt, surface.grid());
                match algo {
                    "sb" => SpillBound::new(&surface, &opt, RATIO).run(&mut oracle),
                    _ => AlignedBound::new(&surface, &opt, RATIO).run(&mut oracle),
                }
            }
            .unwrap_or_else(|e| panic!("{algo} completes: {e}"));
            let _ = writeln!(
                out,
                "{algo} cost_bits={} {}",
                report.total_cost.to_bits(),
                serde_json::to_string(&report).expect("serialize report")
            );
        }
        out
    };
    let row = discover(false);
    let batch = discover(true);
    assert_eq!(
        row, batch,
        "row and batch engines rendered different discovery reports"
    );

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/batch_discovery.json");
    if std::env::var_os("RQP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &batch).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with RQP_BLESS=1 cargo test --test paper_conformance batch_engine",
            path.display()
        )
    });
    assert_eq!(
        batch,
        expected,
        "executor-backed discovery drifted from {}.\n\
         If the change is intentional, regenerate with:\n\
         RQP_BLESS=1 cargo test --test paper_conformance batch_engine",
        path.display()
    );
}

/// Penalty-aware conformance golden: the selection (chosen pool plan,
/// structural fingerprint, prior hash, expected penalty, CVaR) and its
/// exhaustive MSOe/ASO for 2D/4D Q91 under a fixed prior seed, pinned
/// in `tests/golden/penalty_conformance.json`. The floats are rendered
/// shortest-round-trip, so a single-ulp drift anywhere in the prior
/// construction, recost arithmetic, or risk integration fails the diff.
/// Regenerate intentionally with
/// `RQP_BLESS=1 cargo test --test paper_conformance penalty_selection`
/// (the name filter leaves the other goldens untouched).
#[test]
fn penalty_selection_matches_golden() {
    use rqp::core::{NativeChoice, Objective, PenaltyConfig, PriorConfig, SelectivityPrior};

    const PRIOR_SEED: u64 = 20260809;
    let catalog = tpcds::catalog_sf100();
    let mut out = String::from("{\n");
    let configs = [(2usize, 12usize), (4, 4)];
    for (i, (d, grid_points)) in configs.iter().enumerate() {
        let mut bench = q91_with_dims(&catalog, *d);
        bench.grid_points = *grid_points;
        let name = bench.name().to_string();
        let opt = Optimizer::new(
            &catalog,
            &bench.query,
            CostParams::default(),
            EnumerationMode::LeftDeep,
        )
        .expect("valid query");
        let surface = EssSurface::build(&opt, bench.grid());
        let choice = NativeChoice::compute(&surface, &opt);
        let prior = SelectivityPrior::lognormal(
            surface.grid(),
            &choice.qe_sels,
            PriorConfig {
                seed: PRIOR_SEED,
                sigma: 1.0,
                jitter: 0.1,
            },
        )
        .expect("prior over the ESS grid");
        let ctx = EvalContext::with_threads(&surface, &opt, 1);
        let cfg = PenaltyConfig {
            alpha: 0.9,
            objective: Objective::Expected,
        };
        let (stats, sel) =
            rqp::core::eval::evaluate_penaltyaware_ctx(&ctx, &prior, &cfg).expect("PA sweep");
        assert!(
            sel.chosen.expected <= sel.native.expected,
            "{name}: chosen expected {} exceeds native {}",
            sel.chosen.expected,
            sel.native.expected
        );
        let _ = writeln!(out, "  \"{name}\": {{");
        let _ = writeln!(out, "    \"grid_points\": {grid_points},");
        let _ = writeln!(out, "    \"prior_seed\": {PRIOR_SEED},");
        let _ = writeln!(out, "    \"prior_hash\": \"{:016x}\",", sel.prior_hash);
        let _ = writeln!(
            out,
            "    \"chosen_plan\": {},",
            sel.chosen
                .plan_id
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(
            out,
            "    \"chosen_fingerprint\": \"{:016x}\",",
            sel.chosen.fingerprint
        );
        let _ = writeln!(
            out,
            "    \"expected_penalty\": {},",
            fmt_f64(sel.chosen.expected)
        );
        let _ = writeln!(out, "    \"cvar\": {},", fmt_f64(sel.chosen.cvar));
        let _ = writeln!(
            out,
            "    \"native_expected\": {},",
            fmt_f64(sel.native.expected)
        );
        let _ = writeln!(out, "    \"msoe_pa\": {},", fmt_f64(stats.mso));
        let _ = writeln!(out, "    \"aso_pa\": {}", fmt_f64(stats.aso));
        let _ = writeln!(out, "  }}{}", if i + 1 < configs.len() { "," } else { "" });
    }
    out.push_str("}\n");

    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/penalty_conformance.json");
    if std::env::var_os("RQP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &out).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with RQP_BLESS=1 cargo test --test paper_conformance penalty_selection",
            path.display()
        )
    });
    assert_eq!(
        out,
        expected,
        "penalty-aware conformance drifted from {}.\n\
         If the change is intentional, regenerate with:\n\
         RQP_BLESS=1 cargo test --test paper_conformance penalty_selection",
        path.display()
    );
}

#[test]
fn golden_numbers_match() {
    let rows = vec![
        measure(2, 12, true),
        measure(4, 4, false),
        measure_lazy_6d(16),
    ];
    let actual = render(&rows);
    let path = golden_path();
    if std::env::var_os("RQP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &actual).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with RQP_BLESS=1 cargo test --test paper_conformance",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "paper-conformance numbers drifted from {}.\n\
         If the change is intentional, regenerate with:\n\
         RQP_BLESS=1 cargo test --test paper_conformance",
        path.display()
    );
}
