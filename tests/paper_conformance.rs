//! Golden paper-conformance suite.
//!
//! Pins the paper-facing numbers for the shipped 2D/4D Q91 workloads —
//! POSP size, iso-cost contour count, anorexic-reduced bouquet size
//! (ρ_red), and the empirical MSO of each algorithm — against the
//! checked-in `tests/golden/paper_conformance.json`. Any drift in the
//! optimizer, contour geometry, or discovery algorithms fails the test
//! with a diff; regenerate intentionally with
//!
//! ```text
//! RQP_BLESS=1 cargo test --test paper_conformance
//! ```
//!
//! Alongside the golden comparison, the SpillBound bound is asserted
//! per query location: every sub-optimality must stay within D²+3D.

use rqp::catalog::tpcds;
use rqp::core::{
    eval::{evaluate_alignedbound_ctx, evaluate_planbouquet_ctx, evaluate_spillbound_ctx},
    spillbound_guarantee, EvalContext, PlanBouquet,
};
use rqp::ess::EssSurface;
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp::workloads::q91_with_dims;
use std::fmt::Write as _;
use std::path::PathBuf;

const RATIO: f64 = 2.0;
const LAMBDA: f64 = 0.2;

/// One workload's pinned numbers, in golden-file order.
struct Conformance {
    name: String,
    grid_points: usize,
    posp_size: usize,
    contours: usize,
    rho_red: usize,
    msoe_sb: f64,
    msoe_ab: Option<f64>,
    msoe_pb: f64,
}

/// Runs the full pipeline for Q91 at dimensionality `d` on a reduced
/// grid (debug-mode tractable) and collects the conformance numbers.
fn measure(d: usize, grid_points: usize, with_ab: bool) -> Conformance {
    let catalog = tpcds::catalog_sf100();
    let mut bench = q91_with_dims(&catalog, d);
    bench.grid_points = grid_points;
    let name = bench.name().to_string();
    let opt = Optimizer::new(
        &catalog,
        &bench.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("valid query");
    let surface = EssSurface::build(&opt, bench.grid());
    let ctx = EvalContext::with_threads(&surface, &opt, 1);
    let pb = PlanBouquet::new(&surface, &opt, RATIO, LAMBDA);

    let sb_stats = evaluate_spillbound_ctx(&ctx, RATIO).expect("SB sweep");
    // Satellite guarantee check: D²+3D per location, not just globally.
    let bound = spillbound_guarantee(d) as f64;
    for (qa, sub) in sb_stats.subopts.iter().enumerate() {
        assert!(
            *sub <= bound * (1.0 + 1e-6),
            "{name}: SB sub-optimality {sub} at location {qa} exceeds D²+3D = {bound}"
        );
    }
    let msoe_ab = with_ab.then(|| {
        let (ab_stats, _) = evaluate_alignedbound_ctx(&ctx, RATIO).expect("AB sweep");
        for (qa, sub) in ab_stats.subopts.iter().enumerate() {
            assert!(
                *sub <= bound * (1.0 + 1e-6),
                "{name}: AB sub-optimality {sub} at location {qa} exceeds D²+3D = {bound}"
            );
        }
        ab_stats.mso
    });
    let pb_stats = evaluate_planbouquet_ctx(&ctx, RATIO, LAMBDA).expect("PB sweep");

    Conformance {
        name,
        grid_points,
        posp_size: surface.posp_size(),
        contours: pb.contours().len(),
        rho_red: pb.rho_red(),
        msoe_sb: sb_stats.mso,
        msoe_ab,
        msoe_pb: pb_stats.mso,
    }
}

/// Shortest-round-trip float rendering, matching the JSONL trace format.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn render(rows: &[Conformance]) -> String {
    let mut out = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(out, "  \"{}\": {{", r.name);
        let _ = writeln!(out, "    \"grid_points\": {},", r.grid_points);
        let _ = writeln!(out, "    \"posp_size\": {},", r.posp_size);
        let _ = writeln!(out, "    \"contours\": {},", r.contours);
        let _ = writeln!(out, "    \"rho_red\": {},", r.rho_red);
        let _ = writeln!(out, "    \"msoe_sb\": {},", fmt_f64(r.msoe_sb));
        if let Some(ab) = r.msoe_ab {
            let _ = writeln!(out, "    \"msoe_ab\": {},", fmt_f64(ab));
        }
        let _ = writeln!(out, "    \"msoe_pb\": {}", fmt_f64(r.msoe_pb));
        let _ = writeln!(out, "  }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    out.push_str("}\n");
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/paper_conformance.json")
}

#[test]
fn golden_numbers_match() {
    let rows = vec![measure(2, 12, true), measure(4, 4, false)];
    let actual = render(&rows);
    let path = golden_path();
    if std::env::var_os("RQP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &actual).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with RQP_BLESS=1 cargo test --test paper_conformance",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "paper-conformance numbers drifted from {}.\n\
         If the change is intentional, regenerate with:\n\
         RQP_BLESS=1 cargo test --test paper_conformance",
        path.display()
    );
}
