//! Differential suite for the penalty-aware strategy vs the exploratory
//! ones and its own evaluation paths:
//!
//! * expected-case guarantee: under any prior, the chosen plan's
//!   expected sub-optimality never exceeds the native plan's (the native
//!   plan is always a candidate);
//! * CVaR of the selection is monotone non-decreasing in alpha;
//! * the selection is bit-identical at any thread count and across the
//!   dense matrix-backed, dense direct-recost, and lazy-surface paths
//!   (compared by fingerprint — pool ids are an ordering artifact);
//! * artifact save → load → re-select reproduces the persisted
//!   [`PenaltySummary`] bit-for-bit.

use proptest::prelude::*;
use rqp::artifacts::CompiledArtifact;
use rqp::catalog::{tpcds, Catalog};
use rqp::core::{
    penalty, EvalContext, Objective, PenaltyConfig, PenaltySelection, PlanRisk, PriorConfig,
    SelectivityPrior,
};
use rqp::ess::{EssSurface, LazySurface, SurfaceAccess};
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer, QuerySpec};
use rqp_common::MultiGrid;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

struct Fx {
    catalog: Catalog,
    query: QuerySpec,
}

// Reuse one catalog/query across proptest cases (construction dominates).
fn fx() -> &'static Fx {
    static FX: OnceLock<Fx> = OnceLock::new();
    FX.get_or_init(|| {
        let catalog = tpcds::catalog_sf100();
        let query = rqp::workloads::q91_with_dims(&catalog, 2).query;
        Fx { catalog, query }
    })
}

fn optimizer(f: &Fx) -> Optimizer<'_> {
    Optimizer::new(
        &f.catalog,
        &f.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .unwrap()
}

fn risk_bits(r: &PlanRisk) -> (u64, u64, u64) {
    (r.fingerprint, r.expected.to_bits(), r.cvar.to_bits())
}

/// Selections agree on everything pool-order-independent: the winner,
/// the native baseline, the prior identity, and the full multiset of
/// per-candidate risks keyed by fingerprint.
fn assert_selections_equivalent(label: &str, a: &PenaltySelection, b: &PenaltySelection) {
    assert_eq!(a.prior_hash, b.prior_hash, "{label}: prior hash");
    assert_eq!(
        risk_bits(&a.chosen),
        risk_bits(&b.chosen),
        "{label}: chosen"
    );
    assert_eq!(
        risk_bits(&a.native),
        risk_bits(&b.native),
        "{label}: native"
    );
    let key = |risks: &[PlanRisk]| {
        let mut v: Vec<(u64, u64, u64)> = risks.iter().map(risk_bits).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(key(&a.risks), key(&b.risks), "{label}: risk multiset");
}

proptest! {
    // Each case builds a full (small) dense surface; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The guarantee the strategy is named for: whatever the prior, the
    /// winner's expected sub-optimality under it is never worse than the
    /// native optimizer's plan (which is always in the candidate set).
    #[test]
    fn expected_penalty_never_exceeds_native(
        n in 5usize..10,
        min_exp in 5u32..8,
        e0 in -6.0f64..=0.0,
        e1 in -6.0f64..=0.0,
        sigma in 0.2f64..3.0,
        jitter in 0.0f64..0.8,
        seed in 0u64..u64::MAX,
    ) {
        let f = fx();
        let opt = optimizer(f);
        let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 10f64.powi(-(min_exp as i32)), n));
        let prior = SelectivityPrior::lognormal(
            surface.grid(),
            &[10f64.powf(e0), 10f64.powf(e1)],
            PriorConfig { seed, sigma, jitter },
        ).unwrap();
        let ctx = EvalContext::new(&surface, &opt);
        let cfg = PenaltyConfig { alpha: 0.9, objective: Objective::Expected };
        let sel = penalty::select_ctx(&ctx, &prior, &cfg).unwrap();
        prop_assert!(
            sel.chosen.expected <= sel.native.expected,
            "chosen expected {} > native {}",
            sel.chosen.expected,
            sel.native.expected
        );
        // The native baseline really is the native plan's risk.
        prop_assert!(sel.risks.iter().any(|r| r.fingerprint == sel.native.fingerprint));
        prop_assert!(sel.expected_improvement() >= 0.0);
    }

    /// Chosen CVaR is monotone in alpha: a deeper tail can only look
    /// worse, for the selection as a whole (min over candidates of
    /// per-candidate monotone functions is monotone).
    #[test]
    fn chosen_cvar_monotone_in_alpha(
        n in 5usize..9,
        e0 in -6.0f64..=0.0,
        e1 in -6.0f64..=0.0,
        sigma in 0.3f64..2.5,
        seed in 0u64..1_000_000,
    ) {
        let f = fx();
        let opt = optimizer(f);
        let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, n));
        let prior = SelectivityPrior::lognormal(
            surface.grid(),
            &[10f64.powf(e0), 10f64.powf(e1)],
            PriorConfig { seed, sigma, jitter: 0.1 },
        ).unwrap();
        let ctx = EvalContext::new(&surface, &opt);
        let mut prev: Option<f64> = None;
        for alpha in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let cfg = PenaltyConfig { alpha, objective: Objective::Cvar };
            let sel = penalty::select_ctx(&ctx, &prior, &cfg).unwrap();
            prop_assert!(
                sel.chosen.cvar >= sel.chosen.expected * (1.0 - 1e-12),
                "CVaR {} below expectation {} at alpha {alpha}",
                sel.chosen.cvar, sel.chosen.expected
            );
            if let Some(p) = prev {
                prop_assert!(
                    sel.chosen.cvar >= p * (1.0 - 1e-12),
                    "chosen CVaR not monotone: {p} -> {} at alpha {alpha}",
                    sel.chosen.cvar
                );
            }
            prev = Some(sel.chosen.cvar);
        }
    }

    /// One selection, five paths: sequential matrix-backed, parallel at
    /// 2..8 threads, direct dense recost, and the lazy surface must all
    /// produce the same winner with bit-equal risks.
    #[test]
    fn selection_bit_identical_across_threads_and_surfaces(
        n in 5usize..9,
        e0 in -6.0f64..=0.0,
        e1 in -6.0f64..=0.0,
        sigma in 0.3f64..2.5,
        seed in 0u64..1_000_000,
        threads in 2usize..8,
        alpha_pct in 0u32..=100,
    ) {
        let f = fx();
        let opt = optimizer(f);
        let grid = MultiGrid::uniform(2, 1e-7, n);
        let surface = EssSurface::build(&opt, grid.clone());
        let prior = SelectivityPrior::lognormal(
            surface.grid(),
            &[10f64.powf(e0), 10f64.powf(e1)],
            PriorConfig { seed, sigma, jitter: 0.1 },
        ).unwrap();
        let cfg = PenaltyConfig { alpha: alpha_pct as f64 / 100.0, objective: Objective::Expected };
        let ctx = EvalContext::new(&surface, &opt);

        let seq = penalty::select_ctx(&ctx, &prior, &cfg).unwrap();
        let par = penalty::select_parallel(&ctx, &prior, &cfg, threads).unwrap();
        assert_selections_equivalent(&format!("seq vs {threads} threads"), &seq, &par);
        // Same pool order on the same context: the full risk vectors,
        // not just the multiset, are bit-equal.
        prop_assert_eq!(seq.risks.len(), par.risks.len());
        for (a, b) in seq.risks.iter().zip(&par.risks) {
            prop_assert_eq!(risk_bits(a), risk_bits(b));
        }

        let direct = penalty::select_on(&surface, &opt, &prior, &cfg).unwrap();
        assert_selections_equivalent("matrix vs direct recost", &seq, &direct);

        // Fully materialize the lazy surface in a scrambled order so its
        // pool interns the same plan *set* as the dense one under a
        // different id numbering — the comparison must not notice.
        let lazy = LazySurface::new(&opt, grid);
        let len = lazy.grid().len();
        let stride = (seed as usize % len).max(1) | 1; // odd → coprime with 2^k, walks all cells for our sizes
        let mut visited = 0usize;
        let mut qa = seed as usize % len;
        while visited < 2 * len {
            let _ = lazy.plan_id(qa % len);
            qa += stride;
            visited += 1;
        }
        for qa in 0..len {
            let _ = lazy.plan_id(qa);
        }
        prop_assert_eq!(lazy.pool_len(), surface.pool_len(), "pools intern different plan sets");
        let on_lazy = penalty::select_on(&lazy, &opt, &prior, &cfg).unwrap();
        assert_selections_equivalent("dense vs lazy", &seq, &on_lazy);
    }
}

/// A scratch path unique to this process and call site.
fn scratch(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rqp-penalty-{}-{tag}-{n}.rqpa", std::process::id()))
}

/// Compile → attach the penalty summary → save → load → re-select from
/// the loaded artifact's surface and matrix: the persisted summary and
/// the recomputed selection must agree bit-for-bit, and a second save →
/// load round-trip must preserve the summary exactly.
#[test]
fn artifact_roundtrip_reselects_bit_equal() {
    let f = fx();
    let opt = optimizer(f);
    let cfg = PenaltyConfig::default();
    let artifact = CompiledArtifact::compile(&opt, MultiGrid::uniform(2, 1e-6, 8), 2.0, 0.2, 2);
    let (summary, sel) =
        rqp::experiments::penalty_summary(&artifact, &opt, PriorConfig::default(), &cfg).unwrap();
    assert_eq!(summary.prior_hash_u64(), Some(sel.prior_hash));
    assert_eq!(
        summary.chosen_fingerprint_u64(),
        Some(sel.chosen.fingerprint)
    );
    let artifact = artifact.with_penalty(summary.clone());

    let path = scratch("roundtrip");
    artifact.save(&path).unwrap();
    let loaded = CompiledArtifact::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let persisted = loaded.penalty.clone().expect("summary persisted");
    assert_eq!(persisted, summary, "summary changed across save/load");

    // Re-select from the loaded surface + matrix with the persisted
    // prior configuration: bit-equal to the compile-time selection.
    let prior_config = PriorConfig {
        seed: persisted.prior_seed,
        sigma: persisted.prior_sigma,
        jitter: persisted.prior_jitter,
    };
    let (resummary, resel) =
        rqp::experiments::penalty_summary(&loaded, &opt, prior_config, &cfg).unwrap();
    assert_eq!(
        resummary, persisted,
        "re-selection diverged from the persisted summary"
    );
    assert_eq!(resel.prior_hash, sel.prior_hash);
    assert_eq!(resel.chosen.fingerprint, sel.chosen.fingerprint);
    assert_eq!(
        resel.chosen.expected.to_bits(),
        sel.chosen.expected.to_bits()
    );
    assert_eq!(resel.chosen.cvar.to_bits(), sel.chosen.cvar.to_bits());
    assert_eq!(
        resel.native.expected.to_bits(),
        sel.native.expected.to_bits()
    );
}

/// Artifacts written before the penalty field existed (v1 files with no
/// `penalty` key) still load, as `penalty: None`.
#[test]
fn pre_penalty_artifacts_still_load() {
    let f = fx();
    let opt = optimizer(f);
    let artifact = CompiledArtifact::compile(&opt, MultiGrid::uniform(2, 1e-6, 6), 2.0, 0.2, 1);
    assert!(
        artifact.penalty.is_none(),
        "compile() must not attach a summary"
    );
    let path = scratch("v1");
    artifact.save(&path).unwrap();
    let loaded = CompiledArtifact::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(loaded.penalty.is_none());
    assert_eq!(loaded.surface.len(), artifact.surface.len());
}
