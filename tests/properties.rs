//! Property-based tests over the core invariants (proptest).
//!
//! * PCM: plan cost strictly non-decreasing along dominance chains, for
//!   arbitrary plans produced by the optimizer anywhere in the ESS;
//! * DP optimality: no sampled plan beats the DP at its own location;
//! * grid arithmetic round-trips;
//! * discovery soundness: SpillBound never overshoots the truth and
//!   always lands within its bound, for random `qa` and random grids;
//! * lazy contour structure: every lazily-discovered contour is an
//!   antichain that covers its level set, and `optimize_at` cost is
//!   monotone along random axis fibers (the invariant the lazy path's
//!   per-fiber binary search rests on).

use proptest::prelude::*;
use rqp::catalog::{tpcds, Catalog};
use rqp::core::eval::{
    evaluate_alignedbound_parallel, evaluate_planbouquet_parallel, evaluate_spillbound_parallel,
};
use rqp::core::{
    spillbound_guarantee, CachedOracle, CostOracle, EvalContext, SpillBound, SpillMemo,
};
use rqp::ess::{ContourSet, EssSurface, EssView, LazySurface, SurfaceAccess};
use rqp::obs::{JsonlSink, RingSink, Tracer};
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer};
use rqp::workloads::tpcds_queries as q;
use rqp_common::{MultiGrid, SelGrid};
use std::sync::OnceLock;

struct Fx {
    catalog: Catalog,
    query: rqp::optimizer::QuerySpec,
}

// Reuse one catalog/query across proptest cases (construction dominates).
fn fx() -> &'static Fx {
    static FX: OnceLock<Fx> = OnceLock::new();
    FX.get_or_init(|| {
        let catalog = tpcds::catalog_sf100();
        let query = q::q91(&catalog, 2);
        Fx { catalog, query }
    })
}

fn sel_strategy() -> impl Strategy<Value = f64> {
    // log-uniform over [1e-7, 1]
    (-7.0f64..=0.0).prop_map(|e| 10f64.powf(e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pcm_plan_costs_monotone_under_dominance(
        s0 in sel_strategy(),
        s1 in sel_strategy(),
        plan_at0 in sel_strategy(),
        plan_at1 in sel_strategy(),
        bump0 in 1.0f64..100.0,
        bump1 in 1.0f64..100.0,
    ) {
        let f = fx();
        let opt = Optimizer::new(&f.catalog, &f.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        // an arbitrary plan from somewhere in the space...
        let (plan, _) = opt.optimize_at(&[plan_at0, plan_at1]);
        // ...costed at q and at a dominating q'
        let q = [s0, s1];
        let qd = [(s0 * bump0).min(1.0), (s1 * bump1).min(1.0)];
        let c = opt.cost_plan(&plan, &opt.sels_at(&q));
        let cd = opt.cost_plan(&plan, &opt.sels_at(&qd));
        prop_assert!(cd >= c * (1.0 - 1e-12), "PCM violated: {c} -> {cd}");
    }

    #[test]
    fn dp_is_optimal_against_sampled_plans(
        here0 in sel_strategy(),
        here1 in sel_strategy(),
        other0 in sel_strategy(),
        other1 in sel_strategy(),
    ) {
        let f = fx();
        let opt = Optimizer::new(&f.catalog, &f.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let sels = opt.sels_at(&[here0, here1]);
        let (_, best) = opt.optimize_with(&sels);
        // a plan optimal elsewhere can never beat the DP here
        let (other_plan, _) = opt.optimize_at(&[other0, other1]);
        let c = opt.cost_plan(&other_plan, &sels);
        prop_assert!(c >= best * (1.0 - 1e-9), "foreign plan {c} beats DP {best}");
    }

    #[test]
    fn grid_roundtrip(
        n0 in 2usize..20,
        n1 in 2usize..20,
        n2 in 2usize..8,
        pick in 0usize..10_000,
    ) {
        let grid = MultiGrid::new(vec![
            SelGrid::log_scale(1e-6, n0),
            SelGrid::log_scale(1e-5, n1),
            SelGrid::log_scale(1e-4, n2),
        ]);
        let idx = pick % grid.len();
        let coords = grid.coords(idx);
        prop_assert_eq!(grid.flat(&coords), idx);
        for (j, &c) in coords.iter().enumerate() {
            prop_assert_eq!(grid.coord(idx, j), c);
            let s = grid.sel_at(idx, j);
            prop_assert_eq!(grid.dim(j).nearest_idx(s), c);
        }
    }

    #[test]
    fn selgrid_floor_ceil_consistent(
        n in 2usize..32,
        s in sel_strategy(),
    ) {
        let g = SelGrid::log_scale(1e-7, n);
        let ceil = g.ceil_idx(s);
        if let Some(floor) = g.floor_idx(s) {
            prop_assert!(g.sel(floor) <= s * (1.0 + 1e-12));
            prop_assert!(floor <= ceil);
            prop_assert!(ceil - floor <= 1 || ceil == n - 1);
        } else {
            prop_assert_eq!(ceil, 0);
        }
    }
}

proptest! {
    // Discovery runs are heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn spillbound_sound_at_random_locations(
        c0 in 0usize..10,
        c1 in 0usize..10,
        n in 6usize..11,
    ) {
        let f = fx();
        let opt = Optimizer::new(&f.catalog, &f.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, n));
        let mut sb = SpillBound::new(&surface, &opt, 2.0);
        let qa = surface.grid().flat(&[c0 % n, c1 % n]);
        let mut oracle = CostOracle::at_grid(&opt, surface.grid(), qa);
        let report = sb.run(&mut oracle).unwrap();
        prop_assert!(report.completed);
        let sub = report.sub_optimality(surface.opt_cost(qa));
        prop_assert!(sub <= spillbound_guarantee(2) * (1.0 + 1e-6), "subopt {sub}");
        // learnt values never overshoot
        for (j, learnt) in report.learnt.iter().enumerate() {
            if let Some(s) = learnt {
                let truth = surface.grid().sel_at(qa, j);
                prop_assert!((s - truth).abs() <= 1e-12);
            }
        }
    }

    #[test]
    fn parallel_evaluation_bit_equal_to_sequential(
        n in 5usize..9,
        min_exp in 5u32..8,
        threads in 2usize..8,
        ratio_tenths in 15u32..26,
    ) {
        let f = fx();
        let opt = Optimizer::new(&f.catalog, &f.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let min_sel = 10f64.powi(-(min_exp as i32));
        let surface = EssSurface::build(&opt, MultiGrid::uniform(2, min_sel, n));
        let ratio = ratio_tenths as f64 / 10.0;
        let ctx = EvalContext::with_threads(&surface, &opt, threads);

        let bit_equal = |s: &rqp::core::SubOptStats, p: &rqp::core::SubOptStats| {
            s.mso.to_bits() == p.mso.to_bits()
                && s.worst_qa == p.worst_qa
                && s.subopts.len() == p.subopts.len()
                && s.subopts.iter().zip(&p.subopts).all(|(a, b)| a.to_bits() == b.to_bits())
        };

        let sb_seq = evaluate_spillbound_parallel(&ctx, ratio, 1).unwrap();
        let sb_par = evaluate_spillbound_parallel(&ctx, ratio, threads).unwrap();
        prop_assert!(bit_equal(&sb_seq, &sb_par), "SB diverged at {threads} threads");

        let (ab_seq, pen_seq) = evaluate_alignedbound_parallel(&ctx, ratio, 1).unwrap();
        let (ab_par, pen_par) = evaluate_alignedbound_parallel(&ctx, ratio, threads).unwrap();
        prop_assert!(bit_equal(&ab_seq, &ab_par), "AB diverged at {threads} threads");
        prop_assert_eq!(pen_seq.to_bits(), pen_par.to_bits());

        let pb_seq = evaluate_planbouquet_parallel(&ctx, ratio, 0.2, 1).unwrap();
        let pb_par = evaluate_planbouquet_parallel(&ctx, ratio, 0.2, threads).unwrap();
        prop_assert!(bit_equal(&pb_seq, &pb_par), "PB diverged at {threads} threads");
    }

    /// Trace replay is deterministic: the same discovery run re-executed
    /// with a different cost-matrix worker count and a different sink
    /// produces a byte-identical event stream — events carry step
    /// counters, never wall-clock or thread identity.
    #[test]
    fn trace_replay_is_deterministic(
        c0 in 0usize..8,
        c1 in 0usize..8,
        n in 6usize..9,
        threads in 2usize..6,
    ) {
        let f = fx();
        let opt = Optimizer::new(&f.catalog, &f.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, n));
        let qa = surface.grid().flat(&[c0 % n, c1 % n]);

        // Run A: sequential cost matrix, ring sink.
        let ring = std::sync::Arc::new(RingSink::new(1 << 16));
        {
            let ctx = EvalContext::with_threads(&surface, &opt, 1);
            let mut sb = SpillBound::new(&surface, &opt, 2.0);
            sb.set_tracer(Tracer::to_sink(ring.clone()));
            let mut memo = SpillMemo::new();
            let mut oracle = CachedOracle::at_grid(&ctx, qa, &mut memo);
            sb.run(&mut oracle).unwrap();
        }

        // Run B: parallel cost matrix, JSONL file sink.
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "rqp_trace_replay_{}_{}.jsonl",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        {
            let ctx = EvalContext::with_threads(&surface, &opt, threads);
            let mut sb = SpillBound::new(&surface, &opt, 2.0);
            let tracer = Tracer::to_sink(std::sync::Arc::new(JsonlSink::create(&path).unwrap()));
            sb.set_tracer(tracer.clone());
            let mut memo = SpillMemo::new();
            let mut oracle = CachedOracle::at_grid(&ctx, qa, &mut memo);
            sb.run(&mut oracle).unwrap();
            tracer.flush();
        }
        let jsonl = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        let jsonl_lines: Vec<String> = jsonl.lines().map(str::to_string).collect();
        prop_assert!(!jsonl_lines.is_empty(), "trace file is empty");
        prop_assert_eq!(ring.lines(), jsonl_lines, "ring and JSONL replays diverged");
    }

    /// Lazily-discovered contours are maximal skylines of their level
    /// sets: an *antichain* (no location dominates another), and a
    /// *cover* (every in-budget cell is dominated by a skyline cell).
    #[test]
    fn lazy_contours_are_antichains_that_cover(
        n in 5usize..10,
        min_exp in 5u32..8,
    ) {
        let f = fx();
        let opt = Optimizer::new(&f.catalog, &f.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let min_sel = 10f64.powi(-(min_exp as i32));
        let grid = MultiGrid::uniform(2, min_sel, n);
        let lazy = LazySurface::new(&opt, grid.clone());
        let contours = ContourSet::build(&lazy, 2.0);
        let view = EssView::full(2);
        for i in 0..contours.len() {
            let cc = contours.cost(i);
            let locs = contours.locations(&lazy, &view, i);
            for (a_pos, &a) in locs.iter().enumerate() {
                for &b in &locs[a_pos + 1..] {
                    prop_assert!(
                        !grid.dominates_eq(a, b) && !grid.dominates_eq(b, a),
                        "contour {} is not an antichain: {} vs {}", i, a, b
                    );
                }
            }
            for q in grid.iter() {
                if rqp_common::cost_le(lazy.opt_cost(q), cc) {
                    prop_assert!(
                        locs.iter().any(|&s| grid.dominates_eq(s, q)),
                        "cell {} fits contour {} but no skyline cell dominates it", q, i
                    );
                }
            }
        }
    }

    /// `optimize_at` cost is non-decreasing along every axis fiber — the
    /// PCM corollary the lazy surface's per-fiber binary search (both the
    /// skyline enumeration and `axis_extreme`) is sound under.
    #[test]
    fn optimize_at_monotone_along_axis_fibers(
        n in 5usize..10,
        min_exp in 5u32..8,
        base0 in 0usize..10,
        base1 in 0usize..10,
        dim in 0usize..2,
    ) {
        let f = fx();
        let opt = Optimizer::new(&f.catalog, &f.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let min_sel = 10f64.powi(-(min_exp as i32));
        let grid = MultiGrid::uniform(2, min_sel, n);
        let lazy = LazySurface::new(&opt, grid.clone());
        let base = grid.flat(&[base0 % n, base1 % n]);
        let mut prev: Option<f64> = None;
        for c in 0..n {
            let cost = lazy.opt_cost(grid.with_coord(base, dim, c));
            if let Some(p) = prev {
                prop_assert!(
                    cost >= p * (1.0 - 1e-12),
                    "fiber dim {} not monotone: {} -> {} at coord {}", dim, p, cost, c
                );
            }
            prev = Some(cost);
        }
    }
}

proptest! {
    // Penalty-aware selection invariants. Surface builds dominate; few cases.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A degenerate point-mass prior at `qa` reduces expected penalty to
    /// plain sub-optimality at `qa`, so the selection must pick a plan
    /// that is optimal there (expected penalty exactly 1.0) and the CVaR
    /// of the zero-width prior must equal the expectation bit-for-bit.
    #[test]
    fn degenerate_prior_selects_the_optimal_plan(
        c0 in 0usize..8,
        c1 in 0usize..8,
        n in 5usize..9,
        alpha_pct in 0u32..=100,
    ) {
        use rqp::core::{penalty, Objective, PenaltyConfig, SelectivityPrior};
        let f = fx();
        let opt = Optimizer::new(&f.catalog, &f.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, n));
        let qa = surface.grid().flat(&[c0 % n, c1 % n]);
        let prior = SelectivityPrior::delta(surface.grid(), qa);
        let cfg = PenaltyConfig { alpha: alpha_pct as f64 / 100.0, objective: Objective::Expected };
        let ctx = EvalContext::new(&surface, &opt);
        let sel = penalty::select_ctx(&ctx, &prior, &cfg).unwrap();
        prop_assert_eq!(
            sel.chosen.expected.to_bits(),
            1.0f64.to_bits(),
            "delta prior at {} chose a non-optimal plan (expected {})",
            qa,
            sel.chosen.expected
        );
        // Zero-width prior: the tail IS the point mass at any alpha.
        for risk in &sel.risks {
            prop_assert_eq!(
                risk.cvar.to_bits(),
                risk.expected.to_bits(),
                "zero-width prior CVaR {} != expected {}",
                risk.cvar,
                risk.expected
            );
        }
    }

    /// Prior renormalization: the compensated total mass is 1 within
    /// 1 ulp for arbitrary centers, widths, jitters and seeds.
    #[test]
    fn prior_mass_renormalizes_to_one_within_one_ulp(
        e0 in -7.0f64..=0.0,
        e1 in -7.0f64..=0.0,
        sigma in 0.1f64..4.0,
        jitter in 0.0f64..0.9,
        seed in 0u64..u64::MAX,
        n in 4usize..16,
    ) {
        use rqp::core::{PriorConfig, SelectivityPrior};
        let grid = MultiGrid::uniform(2, 1e-7, n);
        let center = [10f64.powf(e0), 10f64.powf(e1)];
        let prior = SelectivityPrior::lognormal(
            &grid,
            &center,
            PriorConfig { seed, sigma, jitter },
        ).unwrap();
        let total = prior.total();
        let ulp = 1.0f64.to_bits().abs_diff(total.to_bits());
        prop_assert!(ulp <= 1, "prior mass {total} is {ulp} ulps from 1.0");
        prop_assert!(prior.weights().iter().all(|w| *w >= 0.0 && w.is_finite()));
    }

    /// CVaR is monotone non-decreasing in alpha (a deeper tail averages
    /// over worse outcomes) and always at least the expectation.
    #[test]
    fn cvar_monotone_in_alpha_and_dominates_expectation(
        c0 in 0usize..8,
        c1 in 0usize..8,
        n in 5usize..9,
        sigma in 0.3f64..2.5,
        seed in 0u64..1_000_000,
    ) {
        use rqp::core::{penalty, Objective, PenaltyConfig, PriorConfig, SelectivityPrior};
        let f = fx();
        let opt = Optimizer::new(&f.catalog, &f.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-7, n));
        let grid = surface.grid();
        let center = grid.sels(grid.flat(&[c0 % n, c1 % n]));
        let prior = SelectivityPrior::lognormal(
            grid,
            &center,
            PriorConfig { seed, sigma, jitter: 0.1 },
        ).unwrap();
        let ctx = EvalContext::new(&surface, &opt);
        let mut prev: Option<Vec<f64>> = None;
        for alpha in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let cfg = PenaltyConfig { alpha, objective: Objective::Cvar };
            let sel = penalty::select_ctx(&ctx, &prior, &cfg).unwrap();
            let cvars: Vec<f64> = sel.risks.iter().map(|r| r.cvar).collect();
            for (r, c) in sel.risks.iter().zip(&cvars) {
                prop_assert!(
                    *c >= r.expected * (1.0 - 1e-12),
                    "CVaR {} below expectation {} at alpha {}", c, r.expected, alpha
                );
            }
            if let Some(p) = prev {
                for (lo, hi) in p.iter().zip(&cvars) {
                    prop_assert!(
                        *hi >= *lo * (1.0 - 1e-12),
                        "CVaR not monotone in alpha: {} -> {} at alpha {}", lo, hi, alpha
                    );
                }
            }
            prev = Some(cvars);
        }
    }
}
