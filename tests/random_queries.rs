//! Randomized cross-crate properties: random catalogs and random acyclic
//! join-graph geometries (chains, stars, branches — the shapes the paper's
//! workload spans), checked for optimizer optimality, PCM, surface
//! monotonicity, contour covering, and the SpillBound guarantee.

use proptest::prelude::*;
use rqp::catalog::{Catalog, Column, ColumnStats, DataType, Table};
use rqp::core::{spillbound_guarantee, CostOracle, SpillBound};
use rqp::ess::{ContourSet, EssSurface, EssView};
use rqp::optimizer::{CostParams, EnumerationMode, Optimizer, Predicate, PredicateKind, QuerySpec};
use rqp_common::MultiGrid;

/// A randomly-shaped acyclic query over a randomly-sized catalog.
#[derive(Debug, Clone)]
struct RandomQuery {
    catalog: Catalog,
    query: QuerySpec,
}

fn random_query_strategy() -> impl Strategy<Value = RandomQuery> {
    // 3..=6 relations; each non-root attaches to a random earlier relation
    // (random tree = chains, stars and branches all arise).
    let rels = 3usize..=6;
    (
        rels,
        proptest::collection::vec(2u64..2_000_000, 6),
        proptest::collection::vec(0usize..100, 6),
        any::<bool>(),
    )
        .prop_map(|(n, sizes, attach, index_all)| {
            let mut catalog = Catalog::new();
            for (i, rows) in sizes.iter().take(n).enumerate() {
                let mut cols = vec![
                    Column::new("k", DataType::Int, ColumnStats::uniform(*rows)).with_index(),
                    Column::new(
                        "fk",
                        DataType::Int,
                        ColumnStats::uniform((*rows).max(10) / 2),
                    ),
                ];
                if index_all {
                    cols[1].indexed = true;
                }
                catalog
                    .add_table(Table::new(format!("t{i}"), *rows, cols))
                    .unwrap();
            }
            let mut predicates = Vec::new();
            for (r, &a) in attach.iter().enumerate().take(n).skip(1) {
                let parent = a % r;
                predicates.push(Predicate {
                    label: format!("t{parent}~t{r}"),
                    kind: PredicateKind::Join {
                        left: parent,
                        left_col: 1,
                        right: r,
                        right_col: 0,
                    },
                });
            }
            // first two joins are error-prone
            let query = QuerySpec {
                name: "random".into(),
                relations: (0..n).collect(),
                predicates,
                epps: vec![0, 1],
            };
            RandomQuery { catalog, query }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_queries_validate_and_optimize(rq in random_query_strategy()) {
        rq.query.validate(&rq.catalog).unwrap();
        let opt = Optimizer::new(&rq.catalog, &rq.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let (plan, cost) = opt.optimize_at(&[1e-3, 1e-2]);
        prop_assert!(cost > 0.0);
        prop_assert_eq!(plan.rel_mask().count_ones() as usize, rq.query.relations.len());
        // every predicate applied exactly once
        let mut preds = plan.all_preds();
        preds.sort_unstable();
        let expect: Vec<usize> = (0..rq.query.predicates.len()).collect();
        prop_assert_eq!(preds, expect);
        // DP cost equals recost of its own plan
        let sels = opt.sels_at(&[1e-3, 1e-2]);
        let recost = opt.cost_plan(&plan, &sels);
        prop_assert!((recost - cost).abs() <= 1e-6 * cost.max(1.0));
    }

    #[test]
    fn bushy_never_loses_to_left_deep_on_random_queries(rq in random_query_strategy()) {
        let ld = Optimizer::new(&rq.catalog, &rq.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let bu = Optimizer::new(&rq.catalog, &rq.query, CostParams::default(), EnumerationMode::Bushy).unwrap();
        for sels in [[1e-5, 1e-5], [1e-2, 0.3], [1.0, 1.0]] {
            let (_, c_ld) = ld.optimize_at(&sels);
            let (_, c_bu) = bu.optimize_at(&sels);
            prop_assert!(c_bu <= c_ld * (1.0 + 1e-9), "bushy {} > left-deep {}", c_bu, c_ld);
        }
    }

    #[test]
    fn random_surfaces_are_monotone_with_covering_contours(rq in random_query_strategy()) {
        let opt = Optimizer::new(&rq.catalog, &rq.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-6, 7));
        surface.check_monotone().unwrap();
        let contours = ContourSet::build(&surface, 2.0);
        let view = EssView::full(2);
        for i in 0..contours.len() {
            let frontier = contours.locations(&surface, &view, i);
            for qa in surface.grid().iter() {
                if surface.opt_cost(qa) <= contours.cost(i) {
                    prop_assert!(
                        frontier.iter().any(|&f| surface.grid().dominates_eq(f, qa)),
                        "covering violated on contour {}", i
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn spillbound_guarantee_on_random_queries(rq in random_query_strategy(), cx in 0usize..7, cy in 0usize..7) {
        let opt = Optimizer::new(&rq.catalog, &rq.query, CostParams::default(), EnumerationMode::LeftDeep).unwrap();
        let surface = EssSurface::build(&opt, MultiGrid::uniform(2, 1e-6, 7));
        let mut sb = SpillBound::new(&surface, &opt, 2.0);
        let qa = surface.grid().flat(&[cx, cy]);
        let mut oracle = CostOracle::at_grid(&opt, surface.grid(), qa);
        let report = sb.run(&mut oracle).unwrap();
        prop_assert!(report.completed);
        let sub = report.sub_optimality(surface.opt_cost(qa));
        prop_assert!(sub <= spillbound_guarantee(2) * (1.0 + 1e-6), "subopt {}", sub);
    }
}
