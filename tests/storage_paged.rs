//! The paged backend must be indistinguishable from the in-memory one.
//!
//! Property layer: the slotted-page codec round-trips arbitrary tuple
//! batches bit-exactly, any single-byte corruption surfaces as a typed
//! error (never wrong data), and the buffer pool never evicts a pinned
//! frame no matter the access pattern. Differential layer: SpillBound /
//! AlignedBound / PlanBouquet discovery runs — budgets, outcomes, learnt
//! selectivities, total costs — are bit-identical between the two
//! `TableStore` backends on the 2D and 4D Q91 suite, even with a pool
//! far smaller than the working set.

use proptest::prelude::*;
use rqp::catalog::tpcds;
use rqp::core::{AlignedBound, PlanBouquet, SpillBound};
use rqp::ess::EssSurface;
use rqp::executor::{BatchExecutor, DataStore, Executor, TableStore};
use rqp::obs::{MetricValue, MetricsRegistry};
use rqp::optimizer::{
    CostParams, EnumerationMode, JoinMethod, Optimizer, PlanNode, PredicateKind, ScanMethod,
};
use rqp::runner::{measure_qa, ExecOracle};
use rqp::storage::{BufferPool, FileId, PageBuf, PagedStore, StorageConfig, StorageError};
use rqp::workloads::{executable_genspec_with_errors, q91_with_dims};
use rqp_catalog::DataSet;
use rqp_common::MultiGrid;

// ---------------------------------------------------------------- codec

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// batch -> page -> bytes -> page -> batch is the identity, for any
    /// tuple content, width, and page size.
    #[test]
    fn page_round_trips_any_batch(
        ncols in 1usize..6,
        page_size in 128usize..4096,
        seed_rows in proptest::collection::vec(any::<i64>(), 0..256),
    ) {
        let cap = PageBuf::capacity(page_size, ncols);
        prop_assert!(cap > 0, "128 B pages hold at least one 5-column tuple");
        let rows: Vec<Vec<i64>> = seed_rows
            .chunks_exact(ncols)
            .take(cap)
            .map(|c| c.to_vec())
            .collect();
        let mut page = PageBuf::new(page_size, ncols, 7);
        for r in &rows {
            prop_assert!(page.push(r), "within capacity");
        }
        page.seal();
        let back = PageBuf::from_bytes(page.bytes().to_vec(), "t", 7).expect("sealed page loads");
        prop_assert_eq!(back.ntuples(), rows.len());
        let mut out = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            out.clear();
            back.read_row(i, &mut out);
            prop_assert_eq!(&out, r);
        }
    }

    /// Any single corrupted byte is a typed error — a checksum mismatch,
    /// or a structural `Corrupt` when the magic/version itself is hit.
    /// Never silently wrong data: the checksum covers every page byte.
    #[test]
    fn single_byte_corruption_is_typed(
        ncols in 1usize..4,
        rows in proptest::collection::vec(any::<i64>(), 1..64),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let page_size = 1024;
        let cap = PageBuf::capacity(page_size, ncols);
        let mut page = PageBuf::new(page_size, ncols, 3);
        for chunk in rows.chunks_exact(ncols).take(cap) {
            page.push(chunk);
        }
        page.seal();
        let mut bytes = page.bytes().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        match PageBuf::from_bytes(bytes, "t", 3) {
            Err(StorageError::ChecksumMismatch { .. } | StorageError::Corrupt(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
            Ok(_) => prop_assert!(false, "corrupted page loaded cleanly"),
        }
    }
}

// ----------------------------------------------------------------- pool

/// Minimal self-cleaning temp dir (no external crates).
struct TempDir {
    path: std::path::PathBuf,
}

impl TempDir {
    fn new(prefix: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

const POOL_PAGE: usize = 256;

/// Writes `pages` sealed single-column pages to a heap file and registers
/// it with a fresh `frames`-frame pool. Page `p`'s first value is
/// `p * capacity`.
fn pool_with_file(frames: usize, pages: usize) -> (BufferPool, FileId, TempDir) {
    let dir = TempDir::new("rqp-paged-test");
    let registry = MetricsRegistry::new();
    let pool = BufferPool::new(
        StorageConfig::default()
            .with_page_size(POOL_PAGE)
            .with_pool_frames(frames),
        &registry,
    )
    .expect("pool");
    let cap = PageBuf::capacity(POOL_PAGE, 1);
    let mut bytes = Vec::new();
    for p in 0..pages {
        let mut page = PageBuf::new(POOL_PAGE, 1, p as u64);
        for i in 0..cap {
            page.push(&[(p * cap + i) as i64]);
        }
        page.seal();
        bytes.extend_from_slice(page.bytes());
    }
    let path = dir.path.join("t.rqp");
    std::fs::write(&path, bytes).expect("write heap file");
    let file = pool.register_file(&path, "t").expect("register");
    (pool, file, dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under any access pattern, pinned frames survive eviction
    /// pressure: a held pin keeps serving its original page contents
    /// while other accesses churn the rest of a 4-frame pool.
    #[test]
    fn pinned_frames_survive_any_access_pattern(
        accesses in proptest::collection::vec(0usize..24, 1..128),
        hold in 0usize..24,
    ) {
        let (pool, file, _dir) = pool_with_file(4, 24);
        let cap = PageBuf::capacity(POOL_PAGE, 1);
        let held = pool.pin(file, hold as u64).expect("pin held page");
        for &p in &accesses {
            let pin = pool.pin(file, p as u64).expect("pin");
            let v = pin.with(|page| page.value(0, 0));
            prop_assert_eq!(v, (p * cap) as i64);
        }
        // The held pin still reads its original page after the churn.
        let v = held.with(|page| page.value(0, 0));
        prop_assert_eq!(v, (hold * cap) as i64);
    }
}

/// With every frame pinned there is no victim: the next distinct pin is
/// the typed `PoolExhausted`, and unpinning frees the pool again.
#[test]
fn exhausted_pool_is_typed_and_recovers() {
    let (pool, file, _dir) = pool_with_file(3, 8);
    let pins: Vec<_> = (0..3)
        .map(|p| pool.pin(file, p).expect("pin within budget"))
        .collect();
    match pool.pin(file, 5) {
        Err(StorageError::PoolExhausted { frames: 3 }) => {}
        other => panic!("expected PoolExhausted, got {other:?}"),
    }
    drop(pins);
    let pin = pool.pin(file, 5).expect("pin after unpinning");
    let cap = PageBuf::capacity(POOL_PAGE, 1);
    assert_eq!(pin.with(|page| page.value(0, 0)), (5 * cap) as i64);
}

// ---------------------------------------------------------- differential

struct Backends {
    catalog: &'static rqp::catalog::Catalog,
    query: &'static rqp::optimizer::QuerySpec,
    grid: MultiGrid,
    mem: DataStore,
    paged: PagedStore,
}

/// Materializes one dataset into both backends with a pool (32 frames)
/// far smaller than the working set, so the paged runs really evict.
fn backends(dims: usize, errors: &[f64], points: usize) -> Backends {
    let catalog: &'static _ = Box::leak(Box::new(tpcds::catalog(0.05)));
    let bench = q91_with_dims(catalog, dims);
    let query: &'static _ = Box::leak(Box::new(bench.query.clone()));
    let spec = executable_genspec_with_errors(catalog, query, 42, errors);
    let data = DataSet::generate(catalog, &spec).expect("generate");
    let config = StorageConfig::default().with_pool_frames(32);
    let paged = PagedStore::materialize(catalog, &data, config).expect("materialize");
    let mem = DataStore::new(catalog, data);
    Backends {
        catalog,
        query,
        grid: MultiGrid::uniform(dims, 1e-7, points),
        mem,
        paged,
    }
}

/// Runs all three discovery algorithms over `store`, returning the
/// serialized reports. serde_json round-trips f64 exactly, so string
/// equality is bit equality for every budget, spent cost, and learnt
/// selectivity in the report.
fn discovery_reports(bk: &Backends, store: &dyn TableStore) -> Vec<String> {
    let opt = Optimizer::new(
        bk.catalog,
        bk.query,
        CostParams::default(),
        EnumerationMode::LeftDeep,
    )
    .expect("valid query");
    let surface = EssSurface::build(&opt, bk.grid.clone());
    let mut out = Vec::new();
    for algo in ["sb", "ab", "pb"] {
        let exec = Executor::new(bk.catalog, bk.query, store, CostParams::default());
        let mut oracle = ExecOracle::new(exec, &opt, surface.grid());
        let report = match algo {
            "sb" => SpillBound::new(&surface, &opt, 2.0).run(&mut oracle),
            "ab" => AlignedBound::new(&surface, &opt, 2.0).run(&mut oracle),
            _ => PlanBouquet::new(&surface, &opt, 2.0, 0.2).run(&mut oracle),
        }
        .unwrap_or_else(|e| panic!("{algo} completes: {e}"));
        out.push(format!(
            "{algo} {} {}",
            report.total_cost.to_bits(),
            serde_json::to_string(&report).expect("serialize report")
        ));
    }
    out
}

fn pool_counter(store: &PagedStore, name: &str) -> u64 {
    store
        .registry()
        .snapshot()
        .into_iter()
        .find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(c),
            _ => None,
        })
        .unwrap_or(0)
}

fn assert_backends_agree(dims: usize, errors: &[f64], points: usize) {
    let bk = backends(dims, errors, points);
    let qa_mem: Vec<u64> = measure_qa(&bk.mem, bk.query)
        .iter()
        .map(|s| s.to_bits())
        .collect();
    let qa_paged: Vec<u64> = measure_qa(&bk.paged, bk.query)
        .iter()
        .map(|s| s.to_bits())
        .collect();
    assert_eq!(qa_mem, qa_paged, "{dims}D ground truth diverged");
    let mem_reports = discovery_reports(&bk, &bk.mem);
    let paged_reports = discovery_reports(&bk, &bk.paged);
    assert_eq!(
        mem_reports, paged_reports,
        "{dims}D discovery reports diverged between backends"
    );
    // The paged runs really went out of core.
    assert!(
        pool_counter(&bk.paged, "storage.pool.evictions") > 0,
        "{dims}D paged run never evicted — pool not smaller than working set"
    );
}

#[test]
fn backends_bit_identical_2d() {
    assert_backends_agree(2, &[50.0, 20.0], 12);
}

#[test]
fn backends_bit_identical_4d() {
    assert_backends_agree(4, &[30.0, 10.0, 50.0, 20.0], 6);
}

/// The vectorized engine matches the row engine over the paged backend
/// bit for bit — same row counts, same metered cost to the last bit —
/// for every join method, exercising the cursor-based batch scan path
/// against the in-memory gather path. (Ledger metering makes the two
/// engines' cost accumulation identical, not merely close.)
#[test]
fn batch_engine_matches_row_engine_on_paged_store() {
    let bk = backends(2, &[50.0, 20.0], 8);
    // First join predicate of the query, as a standalone two-scan plan.
    let (pid, left, right, right_col) = bk
        .query
        .predicates
        .iter()
        .enumerate()
        .find_map(|(pid, p)| match p.kind {
            PredicateKind::Join {
                left,
                right,
                right_col,
                ..
            } => Some((pid, left, right, right_col)),
            _ => None,
        })
        .expect("q91 has a join predicate");
    let mut methods = vec![
        JoinMethod::HashJoin,
        JoinMethod::SortMergeJoin,
        JoinMethod::NestedLoopJoin,
    ];
    // Index nested-loop needs an index on the inner join column.
    let inner_table = bk.catalog.table(bk.query.relations[right]);
    if inner_table.columns[right_col].indexed {
        methods.push(JoinMethod::IndexNLJoin);
    }
    for method in methods {
        let plan = PlanNode::Join {
            method,
            left: Box::new(PlanNode::Scan {
                rel: left,
                method: ScanMethod::SeqScan,
                filters: vec![],
            }),
            right: Box::new(PlanNode::Scan {
                rel: right,
                method: ScanMethod::SeqScan,
                filters: vec![],
            }),
            preds: vec![pid],
        };
        let rows = Executor::new(bk.catalog, bk.query, &bk.paged, CostParams::default())
            .run_full(&plan, f64::INFINITY)
            .expect("row engine");
        let vecs = BatchExecutor::new(bk.catalog, bk.query, &bk.paged, CostParams::default())
            .run_full(&plan, f64::INFINITY)
            .expect("batch engine");
        assert_eq!(rows.rows_out, vecs.rows_out, "{method:?} row count");
        assert_eq!(
            rows.spent.to_bits(),
            vecs.spent.to_bits(),
            "{method:?} metering diverged: {} vs {}",
            rows.spent,
            vecs.spent
        );
        // And within the batch engine, backends must agree bitwise too.
        let mem = BatchExecutor::new(bk.catalog, bk.query, &bk.mem, CostParams::default())
            .run_full(&plan, f64::INFINITY)
            .expect("batch engine, in-memory");
        assert_eq!(mem.rows_out, vecs.rows_out, "{method:?} backend rows");
        assert_eq!(
            mem.spent.to_bits(),
            vecs.spent.to_bits(),
            "{method:?} backend bits"
        );
    }
}

/// `RQP_PAGE_SIZE` / `RQP_POOL_FRAMES` env knobs reject invalid values
/// with typed errors instead of silently falling back. (This is the only
/// test in this binary touching these vars.)
#[test]
fn env_knobs_are_typed() {
    std::env::set_var(rqp::storage::ENV_POOL_FRAMES, "not-a-number");
    match StorageConfig::from_env() {
        Err(StorageError::Config(msg)) => assert!(msg.contains(rqp::storage::ENV_POOL_FRAMES)),
        other => panic!("expected a typed config error, got {other:?}"),
    }
    std::env::set_var(rqp::storage::ENV_POOL_FRAMES, "128");
    std::env::set_var(rqp::storage::ENV_PAGE_SIZE, "4096");
    let cfg = StorageConfig::from_env().expect("valid env");
    assert_eq!((cfg.page_size, cfg.pool_frames), (4096, 128));
    std::env::remove_var(rqp::storage::ENV_POOL_FRAMES);
    std::env::remove_var(rqp::storage::ENV_PAGE_SIZE);
}
