//! Offline shim for the subset of `criterion` used by the rqp benches:
//! `Criterion` with `sample_size`/`measurement_time`/`warm_up_time`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a plain
//! mean-of-samples wall-clock loop printed to stdout — no statistics
//! engine, plots, or saved baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every routine call.
    PerIteration,
}

/// Runs timing loops for one benchmark (shim of `criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh `setup()` inputs, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Benchmark harness configuration and runner (shim of
/// `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs `f` as a named benchmark and prints the mean time per
    /// iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: run single iterations until the warm-up budget is spent,
        // which also calibrates the per-iteration cost.
        let warm_start = Instant::now();
        let mut per_iter = Duration::ZERO;
        let mut warm_runs: u32 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_runs == 0 {
            b.iters = 1;
            f(&mut b);
            per_iter += b.elapsed;
            warm_runs += 1;
            if warm_runs >= 1000 {
                break;
            }
        }
        per_iter = (per_iter / warm_runs).max(Duration::from_nanos(1));

        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            total += b.elapsed;
            count += iters;
        }

        let mean_ns = total.as_nanos() as f64 / count as f64;
        if mean_ns >= 1e6 {
            println!("{name:<40} {:>12.3} ms/iter ({count} iters)", mean_ns / 1e6);
        } else if mean_ns >= 1e3 {
            println!("{name:<40} {:>12.3} us/iter ({count} iters)", mean_ns / 1e3);
        } else {
            println!("{name:<40} {mean_ns:>12.1} ns/iter ({count} iters)");
        }
        self
    }
}

/// Declares a benchmark group function (shim of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c = $cfg;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running each group (shim of
/// `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
