//! Offline shim for the subset of `proptest` used by the rqp test suite:
//! the `proptest!` macro, range/tuple strategies, `prop_map`,
//! `collection::vec`, `any::<T>()`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic RNG
//! seeded by the test name, so runs are reproducible; there is no
//! shrinking — a failing case reports its index and message directly.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values for property tests (shim of
    /// `proptest::strategy::Strategy`; sampling only, no shrinking).
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + rng.closed_unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $i:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (shim of `proptest::arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draws one canonical value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> f64 {
            // finite, sign-symmetric, wide dynamic range
            let mag = (rng.unit_f64() * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy for `T` (shim of `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Vector length specifications accepted by [`vec`].
    pub trait IntoSizeBounds {
        /// Inclusive (min, max) lengths.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeBounds for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeBounds for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeBounds for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + (rng.next_u64() as usize) % (self.max - self.min + 1)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and length
    /// (shim of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG (xorshift64*), seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name via FNV-1a so each test draws a distinct,
        /// reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `f64` in `[0, 1]`.
        pub fn closed_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
        }
    }

    /// Test-loop configuration (shim of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(msg) = outcome {
                    panic!("proptest case {case} failed: {msg}");
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                l,
                r
            ));
        }
    }};
}
