//! Offline shim for the subset of `rand` used by the rqp workspace:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen::<f64>()`. The generator is xorshift64* — deterministic,
//! seeded, statistically fine for synthetic data generation and shuffles
//! (stream values differ from the real `rand` crate, which nothing in the
//! workspace depends on).

use std::ops::{Range, RangeInclusive};

/// Seedable generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (shim of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range. Generic over the output type like the
    /// real crate, so integer literals infer from the call site.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform sample of a primitive (`f64` in `[0,1)`, full-range ints,
    /// fair bools).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Range types `gen_range` accepts, producing values of type `T`.
///
/// Implemented as blanket impls over [`SampleUniform`] (like the real
/// crate) so type inference can unify `T` with the range's element type
/// before integer-literal fallback kicks in.
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Element types uniform ranges can sample.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` or `[lo, hi]`.
    fn sample_range<R: Rng>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_range(lo, hi, true, rng)
    }
}

/// Types `gen` can produce.
pub trait Standard {
    /// Uniform sample.
    fn sample_from<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_from<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample_from<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_from<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span =
                    (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng>(lo: f64, hi: f64, inclusive: bool, rng: &mut R) -> f64 {
        let u = if inclusive {
            (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
        } else {
            f64::sample_from(rng)
        };
        lo + u * (hi - lo)
    }
}

/// Standard generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xorshift64* generator (shim of `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 the seed so small seeds decorrelate.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let state = (z ^ (z >> 31)) | 1; // never zero
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(0i64..17);
            assert!((0..17).contains(&v));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            let w = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
