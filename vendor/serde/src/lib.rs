//! Offline shim for the subset of `serde` the rqp workspace uses.
//!
//! The build environment has no registry access, so this crate provides
//! the same *names* (`Serialize`, `Deserialize`, the derive macros, the
//! `#[serde(default)]` / `#[serde(skip)]` attributes) over a much simpler
//! data model: values serialize into an owned [`Value`] tree which
//! `serde_json` (the sibling shim) renders to / parses from JSON text.
//! Only the shapes the workspace actually serializes are supported.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the entire (simplified) serde data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64`; exact for the integer magnitudes
    /// this workspace serializes (< 2^53).
    Num(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (no duplicate keys are ever produced).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field by key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the serde data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serde data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- derive support helpers -------------------------------------------

/// Fetches and deserializes a required object field (derive helper).
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

/// Like [`field`] but substitutes `Default` when absent
/// (`#[serde(default)]`).
pub fn field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Ok(T::default()),
    }
}

// ---- primitive impls ---------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::msg(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($( {
                            let _ = $n; // positional
                            $t::from_value(
                                it.next().ok_or_else(|| Error::msg("tuple too short"))?,
                            )?
                        },)+))
                    }
                    _ => Err(Error::msg("expected array for tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted keys so serialized output is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            _ => Err(Error::msg("expected object for map")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
