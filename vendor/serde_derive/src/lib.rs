//! Offline `#[derive(Serialize, Deserialize)]` shim.
//!
//! Parses the item's token stream directly (no `syn`/`quote` available in
//! this offline build) and emits impls of the simplified traits in the
//! vendored `serde` crate. Supports non-generic named-field structs and
//! enums with unit / named-field / tuple variants, plus the
//! `#[serde(default)]` and `#[serde(skip)]` field attributes — exactly
//! the shapes the rqp workspace derives.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name plus serde attribute flags.
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

/// A parsed enum variant.
struct Variant {
    name: String,
    /// `None` for unit, `Some(Named(fields))` or `Some(Tuple(arity))`.
    body: Option<VariantBody>,
}

enum VariantBody {
    Named(Vec<Field>),
    Tuple(usize),
}

/// The parsed derive input.
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Extracts `default` / `skip` flags from a `#[serde(...)]` attribute
/// group body.
fn serde_flags(group: &proc_macro::Group, skip: &mut bool, default: &mut bool) {
    let mut inner = group.stream().into_iter();
    let Some(TokenTree::Ident(head)) = inner.next() else {
        return;
    };
    if head.to_string() != "serde" {
        return;
    }
    if let Some(TokenTree::Group(args)) = inner.next() {
        for tok in args.stream() {
            if let TokenTree::Ident(flag) = tok {
                match flag.to_string().as_str() {
                    "skip" => *skip = true,
                    "default" => *default = true,
                    other => panic!("unsupported #[serde({other})] in offline serde shim"),
                }
            }
        }
    }
}

/// Parses named fields from a brace-group token stream.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        let mut skip = false;
        let mut default = false;
        // attributes
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        serde_flags(&g, &mut skip, &mut default);
                    }
                }
                _ => break,
            }
        }
        // visibility (`pub`, `pub(crate)`, ...)
        if let Some(TokenTree::Ident(id)) = toks.peek() {
            if id.to_string() == "pub" {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
        }
        // field name
        let Some(TokenTree::Ident(name)) = toks.next() else {
            break;
        };
        fields.push(Field {
            name: name.to_string(),
            skip,
            default,
        });
        // expect ':' then consume the type up to a comma at angle-depth 0
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        let mut angle = 0i32;
        loop {
            match toks.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

/// Splits a tuple-variant paren group into its arity (top-level commas at
/// angle-depth 0, plus one for a trailing type).
fn tuple_arity(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tok in stream {
        any = true;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

/// Parses the derive input item.
fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // skip outer attributes and visibility
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the offline serde shim");
        }
    }
    let Some(TokenTree::Group(body)) = toks.next() else {
        panic!("expected item body");
    };
    match kind.as_str() {
        "struct" => match body.delimiter() {
            Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(body.stream()),
            },
            Delimiter::Parenthesis => Item::TupleStruct {
                arity: tuple_arity(body.stream()),
                name,
            },
            other => panic!("unsupported struct body delimiter {other:?}"),
        },
        "enum" => {
            let mut variants = Vec::new();
            let mut vt = body.stream().into_iter().peekable();
            loop {
                // attributes on the variant
                loop {
                    match vt.peek() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                            vt.next();
                            vt.next();
                        }
                        _ => break,
                    }
                }
                let Some(TokenTree::Ident(vname)) = vt.next() else {
                    break;
                };
                let body = match vt.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        vt.next();
                        Some(VariantBody::Named(fields))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = tuple_arity(g.stream());
                        vt.next();
                        Some(VariantBody::Tuple(n))
                    }
                    _ => None,
                };
                variants.push(Variant {
                    name: vname.to_string(),
                    body,
                });
                // consume optional discriminant-free comma
                if let Some(TokenTree::Punct(p)) = vt.peek() {
                    if p.as_char() == ',' {
                        vt.next();
                    }
                }
            }
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Derives the shimmed `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut o: Vec<(String, ::serde::Value)> = Vec::new();\n"
            ));
            for f in fields.iter().filter(|f| !f.skip) {
                out.push_str(&format!(
                    "o.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            out.push_str("::serde::Value::Object(o)\n}\n}\n");
        }
        Item::TupleStruct { name, arity } => {
            // Newtype structs serialize transparently (as in real serde);
            // wider tuple structs serialize as arrays.
            let inner = if arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                format!(
                    "::serde::Value::Array(vec![{}])",
                    (0..arity)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 {inner}\n}}\n}}\n"
            ));
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n"
            ));
            for v in &variants {
                let vn = &v.name;
                match &v.body {
                    None => out.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Some(VariantBody::Named(fields)) => {
                        let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        out.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut o: Vec<(String, ::serde::Value)> = Vec::new();\n",
                            pat.join(", ")
                        ));
                        for f in fields.iter().filter(|f| !f.skip) {
                            out.push_str(&format!(
                                "o.push((\"{0}\".to_string(), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        out.push_str(&format!(
                            "::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Object(o))])\n}}\n"
                        ));
                    }
                    Some(VariantBody::Tuple(n)) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Array(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        out.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out.parse().expect("derive(Serialize) emitted invalid Rust")
}

/// Derives the shimmed `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 let o = v.as_object().ok_or_else(|| ::serde::Error::msg(\"expected object for {name}\"))?;\n\
                 let _ = o;\n\
                 Ok({name} {{\n"
            ));
            for f in &fields {
                if f.skip {
                    out.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    out.push_str(&format!(
                        "{0}: ::serde::field_or_default(o, \"{0}\")?,\n",
                        f.name
                    ));
                } else {
                    out.push_str(&format!("{0}: ::serde::field(o, \"{0}\")?,\n", f.name));
                }
            }
            out.push_str("})\n}\n}\n");
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let elems: Vec<String> = (0..arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::msg(\"tuple struct too short\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "match v {{\n\
                     ::serde::Value::Array(items) => Ok({name}({})),\n\
                     _ => Err(::serde::Error::msg(\"expected array for {name}\")),\n\
                     }}",
                    elems.join(", ")
                )
            };
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n}}\n}}\n"
            ));
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n"
            ));
            for v in variants.iter().filter(|v| v.body.is_none()) {
                out.push_str(&format!("\"{0}\" => Ok({name}::{0}),\n", v.name));
            }
            out.push_str(&format!(
                "other => Err(::serde::Error::msg(format!(\"unknown {name} variant {{other}}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                 let (tag, inner) = &o[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n"
            ));
            for v in &variants {
                let vn = &v.name;
                match &v.body {
                    None => {}
                    Some(VariantBody::Named(fields)) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let fo = inner.as_object().ok_or_else(|| ::serde::Error::msg(\"expected object for {name}::{vn}\"))?;\n\
                             let _ = fo;\n\
                             Ok({name}::{vn} {{\n"
                        ));
                        for f in fields {
                            if f.skip {
                                out.push_str(&format!(
                                    "{}: ::core::default::Default::default(),\n",
                                    f.name
                                ));
                            } else if f.default {
                                out.push_str(&format!(
                                    "{0}: ::serde::field_or_default(fo, \"{0}\")?,\n",
                                    f.name
                                ));
                            } else {
                                out.push_str(&format!(
                                    "{0}: ::serde::field(fo, \"{0}\")?,\n",
                                    f.name
                                ));
                            }
                        }
                        out.push_str("})\n}\n");
                    }
                    Some(VariantBody::Tuple(n)) => {
                        if *n == 1 {
                            out.push_str(&format!(
                                "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                            ));
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::msg(\"tuple variant too short\"))?)?"
                                    )
                                })
                                .collect();
                            out.push_str(&format!(
                                "\"{vn}\" => match inner {{\n\
                                 ::serde::Value::Array(items) => Ok({name}::{vn}({})),\n\
                                 _ => Err(::serde::Error::msg(\"expected array for {name}::{vn}\")),\n\
                                 }},\n",
                                elems.join(", ")
                            ));
                        }
                    }
                }
            }
            out.push_str(&format!(
                "other => Err(::serde::Error::msg(format!(\"unknown {name} variant {{other}}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::Error::msg(\"bad value for {name}\")),\n\
                 }}\n\
                 }}\n\
                 }}\n"
            ));
        }
    }
    out.parse()
        .expect("derive(Deserialize) emitted invalid Rust")
}
