//! Offline shim for the subset of `serde_json` used by the rqp workspace:
//! `to_string`, `to_string_pretty`, `from_str`. Text round-trips are
//! lossless for the workspace's data: floats are rendered with Rust's
//! shortest-round-trip formatting and integers below 2^53 stay exact.

use serde::{Deserialize, Serialize, Value};

/// JSON serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer ------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write;
    if !n.is_finite() {
        // JSON has no inf/NaN; real serde_json errors here, we degrade.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust float Display is shortest-round-trip.
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ------------------------------------------------------------

/// Index of the first `"` or `\` in `haystack` (or `haystack.len()`),
/// found eight bytes at a time with the classic SWAR zero-byte test.
fn find_quote_or_backslash(haystack: &[u8]) -> usize {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let mut offset = 0;
    let mut chunks = haystack.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        let q = w ^ (LO * u64::from(b'"'));
        let s = w ^ (LO * u64::from(b'\\'));
        let hit = (q.wrapping_sub(LO) & !q & HI) | (s.wrapping_sub(LO) & !s & HI);
        if hit != 0 {
            return offset + (hit.trailing_zeros() / 8) as usize;
        }
        offset += 8;
    }
    let tail = chunks.remainder();
    offset
        + tail
            .iter()
            .position(|&b| b == b'"' || b == b'\\')
            .unwrap_or(tail.len())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected value at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf8 in number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: raw UTF-8 run up to the next `"` or `\` (large
            // strings — e.g. packed artifact payloads — stay in this path
            // for megabytes, so it scans a word at a time)
            self.pos += find_quote_or_backslash(&self.bytes[self.pos..]);
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }
}
